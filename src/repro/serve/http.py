"""Asyncio HTTP front end for the routing service (``repro serve``).

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` --
stdlib only, one request per connection -- exposing:

- ``GET /query?source=x,y&dest=x,y[&model=block|mcc][&path=0]`` -- one
  routability answer.  Status mirrors the pipeline's overload
  semantics: 200 ``ok``, 400 ``bad_request``, 429 ``overloaded`` (shed
  at admission), 503 while draining, 504 ``deadline_exceeded``.
- ``POST /fault?event=crash|revive&coord=x,y`` -- fault ingestion
  through the incremental engine; 200 with the
  :class:`~repro.faults.incremental.UpdateReport`, 409 when the event
  does not apply (node already faulty / not faulty).
- ``GET /healthz`` -- liveness + breaker state (always 200 while the
  process serves; ``status`` flips to ``degraded`` when the breaker is
  open).
- ``GET /readyz`` -- readiness: 200 while accepting, 503 once shutdown
  began (load balancers stop routing; in-flight work still finishes).
- ``GET /metrics`` -- Prometheus text: serve counters, latency summary,
  queue/breaker gauges, built with
  :class:`~repro.obs.prometheus.ExpositionWriter`.

Graceful shutdown (:func:`run_app` wires SIGTERM/SIGINT): flip
``/readyz`` to 503, stop accepting connections, drain the pipeline
within a bounded grace period, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.prometheus import ExpositionWriter
from repro.serve.pipeline import QueryPipeline
from repro.serve.service import RoutingService

__all__ = ["ServeApp", "run_app"]

_STATUS_BY_RESULT = {
    "ok": 200,
    "bad_request": 400,
    "overloaded": 429,
    "deadline_exceeded": 504,
    "error": 500,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _parse_coord(text: str) -> tuple[int, int]:
    x, y = text.split(",")
    return (int(x), int(y))


class ServeApp:
    """The served endpoints bound to one service + pipeline pair."""

    def __init__(
        self,
        service: RoutingService,
        pipeline: QueryPipeline,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        grace_s: float = 5.0,
        notice_s: float = 0.0,
    ):
        self.service = service
        self.pipeline = pipeline
        self.host = host
        self.port = port
        self.grace_s = grace_s
        self.notice_s = notice_s
        self.ready = False
        self.requests = 0
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ServeApp":
        await self.pipeline.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self.ready = True
        return self

    async def shutdown(self) -> bool:
        """Graceful: unready first, then drain, then close the listener.

        The listener stays open while draining so pollers observe the
        ``/readyz`` 503 (the whole point of readiness); queries shed
        with ``draining`` during the window.  ``notice_s`` holds that
        window open even when the backlog is empty, giving load
        balancers time to stop routing before the listener goes away.
        Returns True when the backlog drained within the grace period.
        """
        self.ready = False
        self.pipeline.accepting = False
        if self.notice_s > 0:
            await asyncio.sleep(self.notice_s)
        drained = await self.pipeline.drain(self.grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return drained

    def url(self, path: str = "/query") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # -- request handling ----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                return
            method, target = parts[0], parts[1]
            content_length = 0
            while True:  # drain headers; we only need Content-Length
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip() or 0)
            if content_length:
                await reader.readexactly(content_length)
            self.requests += 1
            code, body, content_type = await self._dispatch(method, target)
            reason = _REASONS.get(code, "Unknown")
            head = (
                f"HTTP/1.1 {code} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, target: str) -> tuple[int, bytes, str]:
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        if path == "/query":
            return await self._query(method, query)
        if path == "/fault":
            return self._fault(method, query)
        if path == "/healthz":
            return self._json(200, self._healthz_body())
        if path == "/readyz":
            return self._readyz()
        if path == "/metrics":
            return 200, self.render_metrics().encode("utf-8"), \
                "text/plain; version=0.0.4; charset=utf-8"
        return self._json(404, {
            "error": f"unknown path {path!r}",
            "paths": ["/query", "/fault", "/healthz", "/readyz", "/metrics"],
        })

    @staticmethod
    def _json(code: int, body: dict[str, Any]) -> tuple[int, bytes, str]:
        return code, json.dumps(body, sort_keys=True).encode("utf-8"), \
            "application/json"

    @staticmethod
    def _param(
        query: dict[str, list[str]], name: str, parse: Callable[[str], Any],
        default: Any = None,
    ) -> Any:
        values = query.get(name)
        if not values:
            if default is not None:
                return default
            raise ValueError(f"missing required parameter {name!r}")
        try:
            return parse(values[-1])
        except (ValueError, TypeError):
            raise ValueError(f"malformed parameter {name}={values[-1]!r}") from None

    async def _query(
        self, method: str, query: dict[str, list[str]]
    ) -> tuple[int, bytes, str]:
        if method != "GET":
            return self._json(405, {"error": "use GET /query"})
        if not self.ready:
            return self._json(503, {"status": "overloaded", "error": "draining"})
        try:
            source = self._param(query, "source", _parse_coord)
            dest = self._param(query, "dest", _parse_coord)
            model = self._param(query, "model", str, default="block")
            want_path = bool(self._param(query, "path", int, default=1))
            deadline_ms = self._param(query, "deadline_ms", float, default=0.0)
        except ValueError as error:
            return self._json(400, {"status": "bad_request", "error": str(error)})
        result = await self.pipeline.submit(
            source, dest, model=model, want_path=want_path,
            deadline_s=deadline_ms / 1e3 if deadline_ms > 0 else None,
        )
        return self._json(_STATUS_BY_RESULT.get(result.status, 500), result.jsonable())

    def _fault(self, method: str, query: dict[str, list[str]]) -> tuple[int, bytes, str]:
        if method != "POST":
            return self._json(405, {"error": "use POST /fault"})
        if not self.ready:
            return self._json(503, {"status": "overloaded", "error": "draining"})
        try:
            event = self._param(query, "event", str)
            coord = self._param(query, "coord", _parse_coord)
        except ValueError as error:
            return self._json(400, {"status": "bad_request", "error": str(error)})
        if event not in ("crash", "inject", "revive"):
            return self._json(400, {
                "status": "bad_request",
                "error": f"unknown event {event!r} (use crash or revive)",
            })
        try:
            report = self.pipeline.ingest_fault(event, coord)
        except ValueError as error:
            # Inapplicable, not malformed: e.g. crashing an already-faulty
            # node.  409 so blind retries don't read as client bugs.
            return self._json(409, {"status": "conflict", "error": str(error)})
        rect = report.affected_rect
        return self._json(200, {
            "status": "ok",
            "event": report.event,
            "coord": list(report.coord),
            "generation": report.generation,
            "affected_cells": report.affected_cells,
            "affected_fraction": report.affected_fraction,
            "affected_rect": [rect.xmin, rect.xmax, rect.ymin, rect.ymax],
            "full_rebuild": report.full_rebuild,
        })

    def _healthz_body(self) -> dict[str, Any]:
        breaker = self.pipeline.breaker.state()
        return {
            "status": "degraded" if breaker["open"] else "ok",
            "breaker": breaker,
            "generation": self.service.generation,
            "staleness": self.service.staleness(),
            "requests": self.requests,
        }

    def _readyz(self) -> tuple[int, bytes, str]:
        body = {
            "status": "ready" if self.ready else "draining",
            "ready": self.ready,
            "queue_depth": self.pipeline.stats()["queue_depth"],
        }
        return self._json(200 if self.ready else 503, body)

    def render_metrics(self) -> str:
        """Prometheus text for the serve layer (``repro_serve_*``)."""
        stats = self.pipeline.stats()
        w = ExpositionWriter()
        w.counter_family(
            "repro_serve_requests_total",
            "Query pipeline outcomes, by disposition.",
            "outcome",
            {
                "served": stats["counters"].get("served", 0),
                "shed_overload": stats["counters"].get("shed_overload", 0),
                "shed_deadline": stats["counters"].get("shed_deadline", 0),
                "degraded": stats["counters"].get("degraded", 0),
                "stale_served": stats["counters"].get("stale_served", 0),
                "bad_request": stats["counters"].get("bad_requests", 0),
                "error": stats["counters"].get("errors", 0),
            },
        )
        w.single(
            "repro_serve_retries_total", "counter",
            "Staleness backoff retries across all queries.",
            stats["counters"].get("retries", 0),
        )
        w.single(
            "repro_serve_faults_ingested_total", "counter",
            "Fault events applied through the incremental engine.",
            stats["counters"].get("faults_ingested", 0),
        )
        w.header("repro_serve_latency_seconds", "summary",
                 "Submit-to-answer latency of served queries.")
        w.summary("repro_serve_latency_seconds", stats["latency"])
        w.single("repro_serve_queue_depth", "gauge",
                 "Admitted queries waiting for a worker.", stats["queue_depth"])
        w.single("repro_serve_staleness_generations", "gauge",
                 "Generations the published snapshot lags the engine.",
                 stats["service"]["staleness"])
        w.single("repro_serve_breaker_open", "gauge",
                 "1 while the degraded-mode circuit breaker is open.",
                 stats["breaker"]["open"])
        w.single("repro_serve_breaker_trips_total", "counter",
                 "Times the circuit breaker tripped to degraded mode.",
                 stats["breaker"]["trips"])
        w.single("repro_serve_generation", "gauge",
                 "Current fault-engine generation.",
                 stats["service"]["generation"])
        return w.text()


async def run_app(
    app: ServeApp,
    *,
    ttl_s: float | None = None,
    install_signals: bool = True,
    on_ready: Callable[[ServeApp], None] | None = None,
) -> int:
    """Serve until SIGTERM/SIGINT (or ``ttl_s``), then drain and exit 0.

    The exit code is 0 for every *graceful* path -- including a drain
    that had to abandon stragglers after the grace period (shutdown is
    best-effort by design; the abandoned requests were already answered
    ``overloaded``-style by cancellation).
    """
    await app.start()
    if on_ready is not None:
        on_ready(app)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or unsupported platform
    ttl_task = None
    if ttl_s is not None:
        async def _ttl() -> None:
            await asyncio.sleep(ttl_s)
            stop.set()
        ttl_task = asyncio.create_task(_ttl())
    try:
        await stop.wait()
    finally:
        if ttl_task is not None:
            ttl_task.cancel()
        for sig in installed:
            loop.remove_signal_handler(sig)
        await app.shutdown()
    return 0
