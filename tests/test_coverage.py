"""Unit tests for the existence oracle (DP) and Wang's condition."""

import numpy as np
import pytest

from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import (
    covering_sequence_on_x,
    covering_sequence_on_y,
    minimal_path_exists,
    minimal_path_exists_wang,
    monotone_reachability,
)
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D


def _grid(n, m, blocked_cells=()):
    grid = np.zeros((n, m), dtype=bool)
    for cell in blocked_cells:
        grid[cell] = True
    return grid


class TestMonotoneDP:
    def test_empty_mesh_always_reachable(self):
        blocked = _grid(10, 10)
        assert minimal_path_exists(blocked, (0, 0), (9, 9))
        assert minimal_path_exists(blocked, (9, 9), (0, 0))
        assert minimal_path_exists(blocked, (0, 9), (9, 0))

    def test_source_equals_dest(self):
        blocked = _grid(5, 5)
        assert minimal_path_exists(blocked, (2, 2), (2, 2))
        blocked[2, 2] = True
        assert not minimal_path_exists(blocked, (2, 2), (2, 2))

    def test_blocked_endpoint(self):
        blocked = _grid(5, 5, [(0, 0)])
        assert not minimal_path_exists(blocked, (0, 0), (4, 4))
        blocked = _grid(5, 5, [(4, 4)])
        assert not minimal_path_exists(blocked, (0, 0), (4, 4))

    def test_full_row_barrier_blocks(self):
        # Row y=2 fully blocked across the rectangle between the endpoints.
        blocked = _grid(5, 5, [(x, 2) for x in range(5)])
        assert not minimal_path_exists(blocked, (0, 0), (4, 4))
        # But a same-row pair below the wall is fine.
        assert minimal_path_exists(blocked, (0, 0), (4, 0))

    def test_gap_in_barrier_allows(self):
        blocked = _grid(5, 5, [(x, 2) for x in range(5) if x != 3])
        assert minimal_path_exists(blocked, (0, 0), (4, 4))

    def test_straight_line_cases(self):
        blocked = _grid(6, 6, [(3, 0)])
        assert not minimal_path_exists(blocked, (0, 0), (5, 0))  # East blocked
        assert minimal_path_exists(blocked, (0, 1), (5, 1))

    def test_all_quadrants(self):
        # A block SW of the centre only blocks quadrant-III routes.
        blocked = _grid(9, 9, [(x, y) for x in (2, 3) for y in (2, 3)])
        center = (4, 4)
        assert minimal_path_exists(blocked, center, (8, 8))  # NE fine
        assert minimal_path_exists(blocked, center, (0, 8))  # NW fine
        assert minimal_path_exists(blocked, center, (8, 0))  # SE fine
        assert minimal_path_exists(blocked, center, (0, 0))  # around the corner
        # Fully wall off the SW corner instead.
        blocked = _grid(9, 9, [(x, 4 - x) for x in range(5)])
        assert not minimal_path_exists(blocked, (4, 4), (0, 0))

    def test_staircase_obstacle(self):
        """Non-rectangular (MCC-like) obstacles are handled exactly."""
        stairs = [(2, 1), (2, 2), (3, 2), (3, 3), (4, 3), (4, 4)]
        blocked = _grid(8, 8, stairs)
        assert minimal_path_exists(blocked, (0, 0), (7, 7))
        assert not minimal_path_exists(blocked, (2, 0), (3, 6))

    def test_reachability_grid_orientation(self):
        blocked = _grid(6, 6)
        reach = monotone_reachability(blocked, (4, 4), (1, 1))  # quadrant III
        assert reach.shape == (4, 4)
        assert reach[0, 0] and reach[-1, -1]

    def test_reachability_respects_blocks(self):
        blocked = _grid(6, 6, [(1, 0), (0, 1)])
        reach = monotone_reachability(blocked, (0, 0), (5, 5))
        assert reach[0, 0]
        assert not reach.any(axis=None) or not reach[-1, -1]  # walled in


class TestWangCondition:
    def test_no_blocks(self):
        assert minimal_path_exists_wang([], (0, 0), (5, 5))

    def test_single_spanning_block(self):
        # Block spans the full x range of the rectangle, above the source.
        blocks = [Rect(0, 5, 2, 3)]
        assert not minimal_path_exists_wang(blocks, (0, 0), (5, 5))
        # Destination below the block: unaffected.
        assert minimal_path_exists_wang(blocks, (0, 0), (5, 1))

    def test_endpoint_inside_block(self):
        blocks = [Rect(2, 4, 2, 4)]
        assert not minimal_path_exists_wang(blocks, (3, 3), (9, 9))
        assert not minimal_path_exists_wang(blocks, (0, 0), (3, 3))

    def test_two_block_chain_on_y(self):
        """The derived covers-on-y relation: tight diagonal chains block."""
        blocks = [Rect(0, 2, 1, 3), Rect(3, 5, 5, 7)]
        # x(2)min = 3 == x(1)max + 1 -> no free column between them.
        assert covering_sequence_on_y(blocks, (4, 9)) is not None
        assert not minimal_path_exists_wang(blocks, (0, 0), (4, 9))

    def test_two_block_gap_on_y(self):
        """One free column between the blocks lets the path slip through."""
        blocks = [Rect(0, 2, 1, 3), Rect(4, 6, 5, 7)]
        assert covering_sequence_on_y(blocks, (5, 9)) is None

    def test_chain_on_x_symmetric(self):
        blocks = [Rect(1, 3, 0, 2), Rect(5, 7, 3, 5)]
        assert covering_sequence_on_x(blocks, (9, 4)) is not None
        assert not minimal_path_exists_wang(blocks, (0, 0), (9, 4))

    def test_quadrant_reflection(self):
        """Wang's condition works for non-quadrant-I pairs via the frame."""
        blocks = [Rect(2, 7, 4, 5)]
        assert not minimal_path_exists_wang(blocks, (7, 7), (2, 2))
        assert minimal_path_exists_wang(blocks, (7, 7), (2, 6))


class TestWangAgreesWithDP:
    """Wang's condition and the DP decide the same predicate on random
    block sets (the paper's necessary-and-sufficient claim)."""

    @pytest.mark.parametrize("num_faults", [10, 30, 60])
    def test_random_agreement(self, rng, num_faults):
        mesh = Mesh2D(30, 30)
        for _ in range(8):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks = build_faulty_blocks(mesh, faults)
            rects = blocks.rects()
            for _ in range(30):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dp = minimal_path_exists(blocks.unusable, source, dest)
                wang = minimal_path_exists_wang(rects, source, dest)
                assert dp == wang, (
                    f"disagreement for {source} -> {dest} with blocks "
                    f"{[str(r) for r in rects]}: dp={dp} wang={wang}"
                )
