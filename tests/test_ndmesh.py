"""Tests for the N-dimensional extension (the paper's future work)."""

import itertools

import numpy as np
import pytest

from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.ndmesh import (
    MeshND,
    axis_sections_clear,
    build_nd_blocks,
    compute_nd_safety_levels,
    nd_minimal_path_exists,
    nd_monotone_path,
    segment_chain_safe,
)
from repro.ndmesh.conditions import clear_segment


class TestMeshND:
    def test_basic_properties(self):
        mesh = MeshND((4, 5, 6))
        assert mesh.dimensions == 3
        assert mesh.size == 120
        assert mesh.center == (2, 2, 3)
        assert len(list(mesh.nodes())) == 120

    def test_neighbors_interior_and_corner(self):
        mesh = MeshND((4, 4, 4))
        assert len(mesh.neighbors((2, 2, 2))) == 6
        assert len(mesh.neighbors((0, 0, 0))) == 3

    def test_distance_and_directions(self):
        mesh = MeshND((8, 8, 8))
        assert mesh.distance((0, 0, 0), (3, 2, 5)) == 10
        directions = mesh.monotone_directions((1, 5, 3), (4, 2, 3))
        assert set(directions) == {(0, 1), (1, -1)}

    def test_step(self):
        mesh = MeshND((4, 4))
        assert mesh.step((1, 1), 0, 1) == (2, 1)
        assert mesh.step((3, 1), 0, 1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshND(())
        with pytest.raises(ValueError):
            MeshND((3, 0))
        with pytest.raises(ValueError):
            MeshND((3, 3)).require_in_bounds((3, 0))


class TestNDBlocks:
    def test_matches_2d_model(self, rng):
        """In two dimensions the ND labelling equals the 2-D module."""
        mesh2d = Mesh2D(15, 15)
        meshnd = MeshND((15, 15))
        for _ in range(5):
            faults = uniform_faults(mesh2d, 20, rng)
            legacy = build_faulty_blocks(mesh2d, faults)
            nd = build_nd_blocks(meshnd, faults)
            assert np.array_equal(nd.unusable, legacy.unusable)
            assert nd.min_fill_ratio() == 1.0  # 2-D components are rectangles

    def test_3d_diagonal_pair_in_plane_fills(self):
        """Two faults diagonal within one plane pinch the two off-diagonal
        nodes of that plane, as in 2-D."""
        mesh = MeshND((5, 5, 5))
        blocks = build_nd_blocks(mesh, [(1, 1, 2), (2, 2, 2)])
        assert blocks.is_unusable((1, 2, 2))
        assert blocks.is_unusable((2, 1, 2))
        assert not blocks.is_unusable((1, 1, 1))

    def test_3d_space_diagonal_does_not_pinch(self):
        """Faults diagonal across three axes share no pinched neighbour."""
        mesh = MeshND((5, 5, 5))
        blocks = build_nd_blocks(mesh, [(1, 1, 1), (2, 2, 2)])
        assert blocks.num_disabled == 0
        assert len(blocks) == 2

    def test_3d_planar_l_fills_its_plane(self):
        """An L inside one axis plane fills like the 2-D model (the pinch
        argument applies within the plane), ending as a flat box."""
        mesh = MeshND((6, 6, 6))
        blocks = build_nd_blocks(mesh, [(1, 1, 1), (2, 1, 1), (2, 1, 2)])
        assert len(blocks) == 1
        assert blocks.blocks[0].fill_ratio == 1.0
        assert blocks.blocks[0].lower == (1, 1, 1)
        assert blocks.blocks[0].upper == (2, 1, 2)

    def test_3d_components_are_boxes_empirically(self, rng):
        """The emergent (empirical) box property: randomized 3-D fault sets
        converge to box components -- see the module docstring; a failure
        here would be a genuine discovery, not a regression."""
        mesh = MeshND((8, 8, 8))
        for _ in range(20):
            count = int(rng.integers(3, 28))
            cells = set()
            while len(cells) < count:
                cells.add(tuple(int(x) for x in rng.integers(0, 8, 3)))
            assert build_nd_blocks(mesh, sorted(cells)).min_fill_ratio() == 1.0

    def test_3d_blocks_may_touch_on_space_diagonal(self):
        """Unlike 2-D, space-diagonal contact does not merge blocks."""
        mesh = MeshND((5, 5, 5))
        blocks = build_nd_blocks(mesh, [(1, 1, 1), (2, 2, 2)])
        assert len(blocks) == 2
        assert blocks.num_disabled == 0

    def test_counts(self):
        mesh = MeshND((5, 5, 5))
        blocks = build_nd_blocks(mesh, [(1, 1, 2), (2, 2, 2)])
        assert blocks.num_faulty == 2
        assert blocks.num_disabled == 2


class TestNDSafetyLevels:
    def test_matches_2d_levels(self, rng):
        mesh2d = Mesh2D(12, 12)
        meshnd = MeshND((12, 12))
        faults = uniform_faults(mesh2d, 15, rng)
        legacy = compute_safety_levels(mesh2d, build_faulty_blocks(mesh2d, faults).unusable)
        nd = compute_nd_safety_levels(meshnd, build_nd_blocks(meshnd, faults).unusable)
        for node in mesh2d.nodes():
            east, south, west, north = legacy.esl(node)
            assert nd.level(node, 0, 1) == east
            assert nd.level(node, 0, -1) == west
            assert nd.level(node, 1, 1) == north
            assert nd.level(node, 1, -1) == south

    def test_3d_levels_brute_force(self, rng):
        mesh = MeshND((7, 7, 7))
        blocked = np.zeros((7, 7, 7), dtype=bool)
        for _ in range(12):
            blocked[tuple(int(x) for x in rng.integers(0, 7, 3))] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        for _ in range(60):
            node = tuple(int(x) for x in rng.integers(0, 7, 3))
            if blocked[node]:
                continue
            for axis in range(3):
                for sign in (1, -1):
                    count = 0
                    cursor = node
                    while True:
                        nxt = mesh.step(cursor, axis, sign)
                        if nxt is None:
                            count = UNBOUNDED
                            break
                        if blocked[nxt]:
                            break
                        count += 1
                        cursor = nxt
                    assert levels.level(node, axis, sign) == count

    def test_esl_tuple_width(self):
        mesh = MeshND((4, 4, 4, 4))
        levels = compute_nd_safety_levels(mesh, np.zeros((4,) * 4, dtype=bool))
        assert levels.esl((1, 1, 1, 1)) == (UNBOUNDED,) * 8

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compute_nd_safety_levels(MeshND((4, 4)), np.zeros((4, 5), dtype=bool))


class TestNDOracle:
    def test_matches_2d_oracle(self, rng):
        mesh2d = Mesh2D(12, 12)
        faults = uniform_faults(mesh2d, 25, rng)
        blocked = build_faulty_blocks(mesh2d, faults).unusable
        for _ in range(60):
            source = (int(rng.integers(0, 12)), int(rng.integers(0, 12)))
            dest = (int(rng.integers(0, 12)), int(rng.integers(0, 12)))
            assert nd_minimal_path_exists(blocked, source, dest) == minimal_path_exists(
                blocked, source, dest
            )

    def test_3d_path_extraction(self, rng):
        mesh = MeshND((6, 6, 6))
        blocked = np.zeros((6, 6, 6), dtype=bool)
        for _ in range(15):
            blocked[tuple(int(x) for x in rng.integers(0, 6, 3))] = True
        checked = 0
        for _ in range(40):
            source = tuple(int(x) for x in rng.integers(0, 6, 3))
            dest = tuple(int(x) for x in rng.integers(0, 6, 3))
            if blocked[source] or blocked[dest]:
                continue
            path = nd_monotone_path(mesh, blocked, source, dest)
            if nd_minimal_path_exists(blocked, source, dest):
                assert path is not None
                assert path[0] == source and path[-1] == dest
                assert len(path) - 1 == mesh.distance(source, dest)
                assert not any(blocked[node] for node in path)
                checked += 1
            else:
                assert path is None
        assert checked > 0

    def test_all_octants(self):
        blocked = np.zeros((5, 5, 5), dtype=bool)
        blocked[2, 2, 2] = True
        center = (2, 2, 0)
        for corner in itertools.product((0, 4), (0, 4), (4,)):
            assert nd_minimal_path_exists(blocked, center, corner)


def _counterexample_3d():
    """13 blocked cells sealing (0,0,0) -> (4,4,4) with all axes clear.

    The anti-diagonal surface ``x+y+z = 4`` pierced only at the three axis
    points, plus a two-cell wall behind each pierce point.
    """
    blocked = np.zeros((5, 5, 5), dtype=bool)
    for cell in itertools.product(range(5), repeat=3):
        if sum(cell) == 4 and cell not in [(4, 0, 0), (0, 4, 0), (0, 0, 4)]:
            blocked[cell] = True
    for wall in [(4, 1, 0), (4, 0, 1), (1, 4, 0), (0, 4, 1), (1, 0, 4), (0, 1, 4)]:
        blocked[wall] = True
    return blocked


class TestConditions:
    def test_axis_condition_equals_definition3_in_2d(self, rng):
        from repro.core.conditions import is_safe

        mesh2d = Mesh2D(14, 14)
        meshnd = MeshND((14, 14))
        faults = uniform_faults(mesh2d, 18, rng)
        blocked = build_faulty_blocks(mesh2d, faults).unusable
        legacy_levels = compute_safety_levels(mesh2d, blocked)
        nd_levels = compute_nd_safety_levels(meshnd, blocked)
        for _ in range(120):
            source = (int(rng.integers(0, 14)), int(rng.integers(0, 14)))
            dest = (int(rng.integers(0, 14)), int(rng.integers(0, 14)))
            if blocked[source] or blocked[dest]:
                continue
            assert axis_sections_clear(nd_levels, source, dest) == is_safe(
                legacy_levels, source, dest
            )

    def test_axis_condition_unsound_in_3d_for_arbitrary_obstacles(self):
        """The documented counterexample: clear axes, yet no minimal path."""
        mesh = MeshND((5, 5, 5))
        blocked = _counterexample_3d()
        levels = compute_nd_safety_levels(mesh, blocked)
        source, dest = (0, 0, 0), (4, 4, 4)
        assert axis_sections_clear(levels, source, dest)
        assert not nd_minimal_path_exists(blocked, source, dest)

    def test_segment_chain_rejects_the_counterexample(self):
        """The sound condition does not claim the sealed pair -- with any
        pivot set, since no minimal path exists at all."""
        mesh = MeshND((5, 5, 5))
        blocked = _counterexample_3d()
        levels = compute_nd_safety_levels(mesh, blocked)
        pivots = [c for c in mesh.nodes() if not blocked[c]]
        assert not segment_chain_safe(levels, (0, 0, 0), (4, 4, 4), pivots)

    def test_clear_segment_semantics(self):
        mesh = MeshND((8, 8, 8))
        blocked = np.zeros((8, 8, 8), dtype=bool)
        blocked[4, 0, 0] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        assert clear_segment(levels, (0, 0, 0), (3, 0, 0))
        assert not clear_segment(levels, (0, 0, 0), (5, 0, 0))  # runs into block
        assert not clear_segment(levels, (0, 0, 0), (1, 1, 0))  # not axis-aligned
        assert not clear_segment(levels, (0, 0, 0), (0, 0, 0))  # zero-length

    @pytest.mark.parametrize("shape", [(10, 10), (7, 7, 7)])
    def test_segment_chain_soundness(self, rng, shape):
        """Whenever the chain condition claims a pair, the oracle agrees."""
        mesh = MeshND(shape)
        blocked = np.zeros(shape, dtype=bool)
        for _ in range(12):
            blocked[tuple(int(rng.integers(0, k)) for k in shape)] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        pivots = [mesh.center] + [
            tuple(int(rng.integers(0, k)) for k in shape) for _ in range(10)
        ]
        pivots = [p for p in pivots if not blocked[p]]
        claimed = 0
        for _ in range(80):
            source = tuple(int(rng.integers(0, k)) for k in shape)
            dest = tuple(int(rng.integers(0, k)) for k in shape)
            if blocked[source] or blocked[dest]:
                continue
            if segment_chain_safe(levels, source, dest, pivots):
                claimed += 1
                assert nd_minimal_path_exists(blocked, source, dest)
        assert claimed > 0

    def test_segment_chain_certifies_minimal_paths_only(self):
        """Detours outside the source/destination box are rejected: with the
        straight line cut, no minimal path to an on-axis destination exists
        and the chain condition must say no, whatever pivots it gets."""
        mesh = MeshND((6, 6, 6))
        blocked = np.zeros((6, 6, 6), dtype=bool)
        blocked[2, 0, 0] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        source, dest = (0, 0, 0), (5, 0, 0)
        assert not nd_minimal_path_exists(blocked, source, dest)
        pivots = [c for c in mesh.nodes() if not blocked[c]]
        assert not segment_chain_safe(levels, source, dest, pivots)

    def test_box_corner_pivots(self):
        from repro.ndmesh.conditions import box_corner_pivots

        corners = box_corner_pivots((0, 0, 0), (3, 4, 5))
        assert len(corners) == 2**3 - 2  # endpoints excluded
        assert (3, 0, 0) in corners and (0, 4, 5) in corners
        # Degenerate axis collapses duplicate corners away via exclusion.
        flat = box_corner_pivots((0, 0), (3, 0))
        assert flat == []

    def test_box_corner_chain_matches_edge_routing(self, rng):
        """Chains through box corners certify a pair iff some box-edge
        staircase is clear -- and the oracle always agrees."""
        from repro.ndmesh.conditions import box_corner_pivots

        mesh = MeshND((9, 9, 9))
        blocked = np.zeros((9, 9, 9), dtype=bool)
        for _ in range(20):
            blocked[tuple(int(x) for x in rng.integers(0, 9, 3))] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        claimed = 0
        for _ in range(100):
            source = tuple(int(x) for x in rng.integers(0, 9, 3))
            dest = tuple(int(x) for x in rng.integers(0, 9, 3))
            if blocked[source] or blocked[dest]:
                continue
            corners = box_corner_pivots(source, dest)
            if segment_chain_safe(levels, source, dest, corners):
                claimed += 1
                assert nd_minimal_path_exists(blocked, source, dest)
        assert claimed > 0

    def test_segment_chain_uses_multi_hop_chains(self):
        """A staircase needing two intermediate pivots."""
        mesh = MeshND((6, 6, 6))
        blocked = np.zeros((6, 6, 6), dtype=bool)
        blocked[3, 0, 0] = True  # cuts the x-first L corner route
        blocked[0, 2, 0] = True  # cuts the y-first L corner route
        levels = compute_nd_safety_levels(mesh, blocked)
        source, dest = (0, 0, 0), (5, 5, 0)
        assert not segment_chain_safe(levels, source, dest, [(5, 0, 0), (0, 5, 0)])
        assert segment_chain_safe(levels, source, dest, [(2, 0, 0), (2, 5, 0)])
        assert nd_minimal_path_exists(blocked, source, dest)


class TestFourDimensions:
    def test_4d_oracle_and_chain(self, rng):
        """Everything generalizes past 3-D: oracle, levels, chains in a
        4-dimensional mesh."""
        from repro.ndmesh.conditions import box_corner_pivots

        mesh = MeshND((5, 5, 5, 5))
        blocked = np.zeros((5,) * 4, dtype=bool)
        for _ in range(20):
            blocked[tuple(int(x) for x in rng.integers(0, 5, 4))] = True
        levels = compute_nd_safety_levels(mesh, blocked)
        claimed = 0
        for _ in range(30):
            source = tuple(int(x) for x in rng.integers(0, 2, 4))
            dest = tuple(int(x) for x in rng.integers(3, 5, 4))
            if blocked[source] or blocked[dest]:
                continue
            corners = box_corner_pivots(source, dest)
            assert len(corners) == 2**4 - 2
            if segment_chain_safe(levels, source, dest, corners):
                claimed += 1
                assert nd_minimal_path_exists(blocked, source, dest)
                path = nd_monotone_path(mesh, blocked, source, dest)
                assert path is not None
                assert len(path) - 1 == mesh.distance(source, dest)
        assert claimed > 0
