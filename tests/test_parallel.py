"""Tests for ``repro.parallel``: sharding, the artifact cache, and the
worker-count invariance of the condition experiments."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import fig9_metrics
from repro.experiments.runner import BLOCK_MODEL, ConditionExperiment, MetricSpec
from repro.obs.prof import Profiler, use_profiler
from repro.parallel.cache import (
    ArtifactCache,
    StaleArtifactError,
    get_artifact_cache,
    use_artifact_cache,
)
from repro.parallel.pool import pattern_seed_tree, plan_shards


def _tiny_config(seed=11):
    return ExperimentConfig.scaled(
        side=32, patterns_per_count=3, destinations_per_pattern=5, seed=seed
    )


class TestShardPlanning:
    def test_shards_partition_the_seed_tree(self):
        config = _tiny_config()
        tree = pattern_seed_tree(config.seed, config.fault_counts, config.patterns_per_count)
        plans = plan_shards(config.seed, config.fault_counts, config.patterns_per_count, 2)
        assert len(plans) == len(config.fault_counts)
        for seeds, shards in zip(tree, plans):
            reassembled = [seq for shard in shards for seq in shard.pattern_seeds]
            assert [s.entropy for s in reassembled] == [s.entropy for s in seeds]
            assert [s.spawn_key for s in reassembled] == [s.spawn_key for s in seeds]
            sizes = [len(shard.pattern_seeds) for shard in shards]
            assert max(sizes) - min(sizes) <= 1
            assert [shard.pattern_offset for shard in shards] == [
                sum(sizes[:i]) for i in range(len(sizes))
            ]

    def test_workers_one_is_a_single_shard(self):
        plans = plan_shards(7, (2, 4), 5, 1)
        assert all(len(shards) == 1 for shards in plans)
        assert all(len(shards[0].pattern_seeds) == 5 for shards in plans)

    def test_more_workers_than_patterns(self):
        plans = plan_shards(7, (2,), 3, 8)
        assert len(plans[0]) == 3  # never an empty shard

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            plan_shards(7, (2,), 3, 0)


class TestArtifactCache:
    def test_hit_miss_accounting_and_lru_eviction(self):
        cache = ArtifactCache(maxsize=2)
        assert cache.get_or_build("a", lambda: 1) == 1
        assert cache.get_or_build("a", lambda: 2) == 1  # hit: build not called
        assert cache.get_or_build("b", lambda: 2) == 2
        assert cache.get_or_build("c", lambda: 3) == 3  # evicts "a" (LRU)
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.get_or_build("a", lambda: 9) == 9
        assert cache.stats() == {
            "entries": 2,
            "maxsize": 2,
            "hits": 1,
            "misses": 4,
            "stale": 0,
            "revalidated": 0,
        }

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            ArtifactCache(maxsize=0)

    def test_use_artifact_cache_scopes_the_installation(self):
        outer = get_artifact_cache()
        replacement = ArtifactCache()
        with use_artifact_cache(replacement) as installed:
            assert installed is replacement
            assert get_artifact_cache() is replacement
        assert get_artifact_cache() is outer

    def test_profiler_counters_track_hits_and_misses(self):
        cache = ArtifactCache()
        profiler = Profiler()
        with use_profiler(profiler):
            cache.get_or_build("k", lambda: 1)
            cache.get_or_build("k", lambda: 1)
            cache.get_or_build("j", lambda: 2)
        assert profiler.hot["cache.misses"] == 2
        assert profiler.hot["cache.hits"] == 1

    def test_generation_tagged_entries_go_stale(self):
        cache = ArtifactCache()
        assert cache.get_or_build("k", lambda: 1, generation=1) == 1
        assert cache.get_or_build("k", lambda: 2, generation=1) == 1  # hit
        assert cache.generation_of("k") == 1
        # A newer generation without a revalidator rebuilds the entry.
        assert cache.get_or_build("k", lambda: 2, generation=2) == 2
        assert cache.generation_of("k") == 2
        assert cache.stats()["stale"] == 1
        assert cache.stats()["hits"] == 1

    def test_revalidate_retags_surviving_entries(self):
        cache = ArtifactCache()
        seen: list = []

        def revalidate(value, tag):
            seen.append((value, tag))
            return True

        cache.get_or_build("k", lambda: 1, generation=1)
        got = cache.get_or_build(
            "k", lambda: 2, generation=5, revalidate=revalidate
        )
        assert got == 1  # survived: old value kept
        assert seen == [(1, 1)]
        assert cache.generation_of("k") == 5
        assert cache.stats()["revalidated"] == 1
        # Once retagged, the same generation is a plain hit (no recheck).
        cache.get_or_build("k", lambda: 2, generation=5, revalidate=revalidate)
        assert seen == [(1, 1)]

    def test_revalidate_rejection_rebuilds(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=1)
        got = cache.get_or_build(
            "k", lambda: 2, generation=2, revalidate=lambda v, t: False
        )
        assert got == 2
        assert cache.stats() == {
            "entries": 1,
            "maxsize": cache.maxsize,
            "hits": 0,
            "misses": 2,
            "stale": 1,
            "revalidated": 0,
        }

    def test_untagged_callers_keep_legacy_behaviour(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1)
        assert cache.get_or_build("k", lambda: 2) == 1
        assert cache.generation_of("k") is None
        # An untagged lookup of a tagged entry is also a plain hit.
        cache.get_or_build("g", lambda: 3, generation=7)
        assert cache.get_or_build("g", lambda: 4) == 3

    def test_staleness_profiler_counters(self):
        cache = ArtifactCache()
        profiler = Profiler()
        with use_profiler(profiler):
            cache.get_or_build("k", lambda: 1, generation=1)
            cache.get_or_build("k", lambda: 2, generation=2)
            cache.get_or_build(
                "k", lambda: 3, generation=3, revalidate=lambda v, t: True
            )
        assert profiler.hot["cache.stale"] == 1
        assert profiler.hot["cache.revalidated"] == 1


class TestStalenessBudget:
    def test_within_budget_still_revalidates(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=1)
        got = cache.get_or_build(
            "k", lambda: 2, generation=3,
            revalidate=lambda v, t: True, max_staleness_generations=2,
        )
        assert got == 1
        assert cache.stats()["revalidated"] == 1

    def test_over_budget_raises_typed_error(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=1)
        with pytest.raises(StaleArtifactError) as excinfo:
            cache.get_or_build(
                "k", lambda: 2, generation=5,
                revalidate=lambda v, t: True, max_staleness_generations=2,
            )
        error = excinfo.value
        assert error.key == "k"
        assert error.tag == 1
        assert error.generation == 5
        assert error.age == 4
        assert "4 generation(s) old" in str(error)
        assert cache.stats()["stale"] == 1
        # The entry survives: a later within-budget call can still
        # revalidate it instead of rebuilding.
        assert cache.get_or_build(
            "k", lambda: 2, generation=5, revalidate=lambda v, t: True,
        ) == 1

    def test_untagged_entry_over_any_budget(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1)  # no generation tag
        with pytest.raises(StaleArtifactError) as excinfo:
            cache.get_or_build(
                "k", lambda: 2, generation=1, max_staleness_generations=10,
            )
        assert excinfo.value.tag is None
        assert excinfo.value.age is None

    def test_current_generation_ignores_budget(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=4)
        got = cache.get_or_build(
            "k", lambda: 2, generation=4, max_staleness_generations=0,
        )
        assert got == 1  # fresh: plain hit, budget irrelevant

    def test_default_budget_is_unlimited(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=1)
        got = cache.get_or_build(
            "k", lambda: 2, generation=100, revalidate=lambda v, t: True,
        )
        assert got == 1

    def test_stale_error_is_a_lookup_error(self):
        assert issubclass(StaleArtifactError, LookupError)


class TestPeekAndDrop:
    def test_peek_returns_without_accounting(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1, generation=3)
        before = cache.stats()
        assert cache.peek("k") == 1
        assert cache.generation_of("k") == 3
        assert cache.peek("missing") is None
        assert cache.peek("missing", default="d") == "d"
        assert cache.stats() == before

    def test_drop_removes_entry(self):
        cache = ArtifactCache()
        cache.get_or_build("k", lambda: 1)
        assert cache.drop("k") is True
        assert "k" not in cache
        assert cache.drop("k") is False


class TestExperimentCacheReuse:
    def test_repeated_sweep_hits_the_cache(self):
        config = _tiny_config()
        experiment = ConditionExperiment(config, metrics_factory=fig9_metrics)
        with use_artifact_cache(ArtifactCache()) as cache:
            first = experiment.run("fig9", "t")
            after_first = cache.stats()
            assert after_first["hits"] == 0
            assert after_first["misses"] > 0
            second = experiment.run("fig9", "t")
            assert cache.misses == after_first["misses"]  # all patterns reused
            assert cache.hits == after_first["misses"]
        assert first.series == second.series


class TestWorkerInvariance:
    def test_parallel_run_is_bit_identical_to_serial(self):
        config = _tiny_config()
        experiment = ConditionExperiment(config, metrics_factory=fig9_metrics)
        with use_artifact_cache(ArtifactCache()):
            serial = experiment.run("fig9", "t", workers=1)
        with use_artifact_cache(ArtifactCache()):
            parallel = experiment.run("fig9", "t", workers=4)
        assert serial.xs == parallel.xs
        assert serial.series == parallel.series

    def test_workers_require_a_metrics_factory(self):
        config = _tiny_config()
        experiment = ConditionExperiment(config, metrics=fig9_metrics(config))
        with pytest.raises(ValueError, match="metrics_factory"):
            experiment.run("fig9", "t", workers=2)

    def test_rejects_nonpositive_workers(self):
        config = _tiny_config()
        experiment = ConditionExperiment(config, metrics_factory=fig9_metrics)
        with pytest.raises(ValueError, match="workers"):
            experiment.run("fig9", "t", workers=0)

    def test_factory_built_metrics_match_explicit_metrics(self):
        config = _tiny_config()
        via_factory = ConditionExperiment(config, metrics_factory=fig9_metrics)
        explicit = ConditionExperiment(config, metrics=fig9_metrics(config))
        assert [m.name for m in via_factory.metrics] == [m.name for m in explicit.metrics]


class TestBatchedMetricsInTheRunner:
    def test_batched_and_scalar_metrics_agree_end_to_end(self):
        config = _tiny_config()
        batched = fig9_metrics(config)
        scalar_only = [MetricSpec(m.name, m.fn, m.model, None) for m in batched]
        a = ConditionExperiment(config, batched).run("fig9", "t")
        b = ConditionExperiment(config, scalar_only).run("fig9", "t")
        assert a.series == b.series

    def test_duplicate_metric_names_rejected(self):
        config = _tiny_config()
        metric = MetricSpec("m", lambda ctx, dest: True, BLOCK_MODEL)
        with pytest.raises(ValueError, match="duplicate"):
            ConditionExperiment(config, [metric, metric])
