"""Profiling hooks: hot counters, sections, cProfile capture, null default."""

import numpy as np
import pytest

from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType, build_mccs
from repro.core.safety import compute_safety_levels
from repro.mesh.topology import Mesh2D
from repro.obs.prof import (
    HOT_COUNTER_NAMES,
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.routing.router import GreedyAdaptiveRouter


@pytest.fixture
def faulty_mesh():
    mesh = Mesh2D(12, 12)
    faults = uniform_faults(mesh, 4, np.random.default_rng(5))
    return mesh, faults


class TestHotCounters:
    def test_count_accumulates(self):
        prof = Profiler()
        prof.count("router.steps")
        prof.count("router.steps", 4)
        assert prof.hot["router.steps"] == 5

    def test_router_bumps_route_and_step_counters(self):
        mesh = Mesh2D(12, 12)
        router = GreedyAdaptiveRouter(mesh, np.zeros((12, 12), dtype=bool))
        with use_profiler(Profiler()) as prof:
            path = router.route((0, 0), (10, 10))
        assert prof.hot["router.routes"] == 1
        assert prof.hot["router.steps"] == len(path) - 1

    def test_substrate_builders_bump_counters(self, faulty_mesh):
        mesh, faults = faulty_mesh
        with use_profiler(Profiler()) as prof:
            blocks = build_faulty_blocks(mesh, faults)
            build_mccs(mesh, faults, MCCType.TYPE_ONE)
            compute_safety_levels(mesh, blocks.unusable)
        assert prof.hot["blocks.build"] == 1
        assert prof.hot["mcc.build"] == 1
        assert prof.hot["esl.recompute"] == 1

    def test_documented_names_cover_producers(self):
        # the instrumented call sites only use documented counter names
        assert {
            "router.routes", "router.steps", "esl.recompute",
            "blocks.build", "mcc.build", "sim.messages",
        } <= HOT_COUNTER_NAMES


class TestSections:
    def test_section_times_land_in_histogram(self):
        prof = Profiler()
        for _ in range(3):
            with prof.section("work"):
                sum(range(1000))
        histogram = prof.sections["work"]
        assert histogram.count == 3
        assert histogram.min > 0  # perf_counter_ns ticks

    def test_snapshot_shape(self):
        prof = Profiler()
        prof.count("router.steps", 7)
        with prof.section("work"):
            pass
        snapshot = prof.snapshot()
        assert snapshot["hot_counters"] == {"router.steps": 7}
        assert snapshot["sections_ns"]["work"]["count"] == 1
        assert snapshot["top_functions"] == []  # not detailed

    def test_detailed_names_hot_frames(self):
        prof = Profiler(detailed=True)
        with prof.section("outer"):
            build_faulty_blocks(Mesh2D(8, 8), {(2, 2)})
        rows = prof.top_functions(limit=5)
        assert rows, "detailed section should capture frames"
        assert all("function" in row and "cumtime_s" in row for row in rows)
        # sorted by cumulative time, hottest first
        cum = [row["cumtime_s"] for row in rows]
        assert cum == sorted(cum, reverse=True)

    def test_nested_sections_time_independently(self):
        prof = Profiler(detailed=True)
        with prof.section("outer"):
            with prof.section("inner"):
                pass
        assert prof.sections["outer"].count == 1
        assert prof.sections["inner"].count == 1
        # only the outermost section runs cProfile
        assert len(prof._profiles) == 1

    def test_to_table_mentions_everything(self):
        prof = Profiler()
        prof.count("sim.messages", 3)
        with prof.section("stats.routing"):
            pass
        table = prof.to_table()
        assert "profiled sections" in table
        assert "stats.routing" in table
        assert "hot counters" in table
        assert "sim.messages" in table


class TestInstallation:
    def test_null_profiler_is_default_and_inert(self):
        assert get_profiler() is NULL_PROFILER
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.count("router.steps", 100)
        with NULL_PROFILER.section("ignored"):
            pass
        assert not NULL_PROFILER.hot
        assert not NULL_PROFILER.sections

    def test_use_profiler_scopes_and_restores(self):
        prof = Profiler()
        with use_profiler(prof):
            assert get_profiler() is prof
        assert get_profiler() is NULL_PROFILER

    def test_set_profiler_none_restores_null(self):
        previous = set_profiler(Profiler())
        assert previous is NULL_PROFILER
        set_profiler(None)
        assert get_profiler() is NULL_PROFILER

    def test_uninstalled_producers_pay_nothing(self, faulty_mesh):
        mesh, faults = faulty_mesh
        build_faulty_blocks(mesh, faults)  # must not raise, nothing recorded
        assert isinstance(get_profiler(), NullProfiler)
