"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.blocks import BlockSet, build_faulty_blocks
from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D

#: The paper's Figure 1 worked example: eight faults whose faulty block is
#: exactly [2:6, 3:6] in a mesh large enough to hold it.
FIGURE1_FAULTS: list[Coord] = [
    (3, 3),
    (3, 4),
    (4, 4),
    (5, 4),
    (6, 4),
    (2, 5),
    (5, 5),
    (3, 6),
]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20020701)  # ICDCS 2002 vintage seed


@pytest.fixture
def mesh20() -> Mesh2D:
    return Mesh2D(20, 20)


@pytest.fixture
def figure1_blocks() -> BlockSet:
    return build_faulty_blocks(Mesh2D(10, 10), FIGURE1_FAULTS)


def random_block_set(mesh: Mesh2D, num_faults: int, rng: np.random.Generator) -> BlockSet:
    """A block set from uniformly random faults (no source constraint)."""
    from repro.faults.injection import uniform_faults

    return build_faulty_blocks(mesh, uniform_faults(mesh, num_faults, rng))
