"""The ``repro bench`` harness: registry, runner, BENCH files, compare gate."""

import copy
import json

import pytest

from repro.bench import (
    BenchConfig,
    BenchRegistry,
    Workload,
    builtin_registry,
    compare_results,
    next_bench_path,
    run_benchmarks,
)
from repro.bench.runner import load_result, write_result
from repro.cli import main


def _tiny_registry() -> BenchRegistry:
    registry = BenchRegistry()

    @registry.register("micro.noop", description="does nothing, quickly")
    def run_noop(config):
        return sum(range(100))

    def pair_setup(config):
        return list(range(200 if config.quick else 2000))

    @registry.register("macro.sum", kind="macro", setup=pair_setup,
                       repeats=4, quick_repeats=2)
    def run_sum(state):
        return sum(state)

    return registry


class TestRegistry:
    def test_register_and_select(self):
        registry = _tiny_registry()
        assert registry.names() == ["micro.noop", "macro.sum"]
        assert [w.name for w in registry.select(["macro.*"])] == ["macro.sum"]
        assert len(registry.select(None)) == 2

    def test_duplicate_name_rejected(self):
        registry = _tiny_registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(Workload(name="micro.noop", kind="micro", run=lambda s: s))

    def test_unknown_pattern_fails_loudly(self):
        with pytest.raises(KeyError, match="no workload matches"):
            _tiny_registry().select(["macro.typo*"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Workload(name="x", kind="mega", run=lambda s: s)

    def test_builtins_cover_both_kinds(self):
        registry = builtin_registry()
        kinds = {registry.get(name).kind for name in registry.names()}
        assert kinds == {"micro", "macro"}
        assert "micro.esl_compute" in registry
        assert "macro.fig9_sweep" in registry

    def test_serve_sweep_registered_as_macro(self):
        registry = builtin_registry()
        assert "serve.qps_sweep" in registry
        workload = registry.get("serve.qps_sweep")
        assert workload.kind == "macro"
        assert workload.setup is None  # receives BenchConfig directly

    def test_incremental_vs_full_rebuild_pair_registered(self):
        """The delta-maintenance headline pair shares one setup so the
        p50 ratio is the per-event maintenance speedup."""
        registry = builtin_registry()
        incremental = registry.get("faults.incremental_update")
        full = registry.get("faults.full_rebuild")
        assert incremental.setup is full.setup
        assert incremental.repeats == full.repeats

    def test_incremental_workload_beats_full_rebuild_quick(self):
        """CI-scale teeth for the perf claim: even at --quick scale the
        delta-maintained run must beat rebuilding from scratch."""
        from repro.bench.runner import BenchConfig, run_benchmarks

        registry = builtin_registry()
        config = BenchConfig(quick=True, repeats=3, seed=2002)
        result = run_benchmarks(
            registry.select(["faults.*"]), config
        )
        incremental = result["workloads"]["faults.incremental_update"]
        full = result["workloads"]["faults.full_rebuild"]
        assert incremental["wall_time_s"]["p50"] < full["wall_time_s"]["p50"]

    def test_discovery_runs_hooks(self, tmp_path):
        (tmp_path / "bench_fake.py").write_text(
            "def register_workloads(registry):\n"
            "    registry.add_called = True\n"
            "    @registry.register('micro.discovered')\n"
            "    def run(config):\n"
            "        return config.seed\n"
        )
        (tmp_path / "bench_broken.py").write_text("raise RuntimeError('boom')\n")
        (tmp_path / "bench_plain.py").write_text("X = 1\n")  # no hook: fine
        registry = BenchRegistry()
        warnings = registry.load_directory(tmp_path)
        assert "micro.discovered" in registry
        assert len(warnings) == 1 and "bench_broken.py" in warnings[0]

    def test_discovery_of_repo_benchmarks(self):
        registry = builtin_registry()
        warnings = registry.load_directory("benchmarks")
        assert warnings == []
        assert "micro.existence_oracle" in registry
        assert "macro.traffic_wu" in registry

    def test_missing_directory_warns(self):
        warnings = BenchRegistry().load_directory("no/such/dir")
        assert len(warnings) == 1 and "does not exist" in warnings[0]


class TestRunner:
    def test_result_shape(self):
        result = run_benchmarks(
            _tiny_registry().select(None), BenchConfig(quick=True)
        )
        assert result["schema"] == 1 and result["quick"] is True
        noop = result["workloads"]["micro.noop"]
        assert noop["kind"] == "micro"
        assert noop["repeats"] == 5  # quick default
        wall = noop["wall_time_s"]
        assert wall["count"] == 5 and wall["p50"] is not None
        assert result["workloads"]["macro.sum"]["repeats"] == 2
        json.dumps(result)  # fully JSON-ready

    def test_repeats_override(self):
        result = run_benchmarks(
            _tiny_registry().select(["micro.noop"]),
            BenchConfig(quick=True, repeats=3),
        )
        assert result["workloads"]["micro.noop"]["wall_time_s"]["count"] == 3

    def test_setupless_workload_receives_config(self):
        seen = {}
        registry = BenchRegistry()

        @registry.register("micro.probe")
        def run(config):
            seen["config"] = config

        run_benchmarks(registry.select(None), BenchConfig(quick=True, seed=77))
        assert isinstance(seen["config"], BenchConfig)
        assert seen["config"].seed == 77

    def test_traced_run_collects_metrics(self):
        registry = BenchRegistry()

        @registry.register("micro.traced")
        def run(config):
            from repro.obs import get_tracer
            get_tracer().emit("route_end", hops=4, minimal=True, detours=0)

        result = run_benchmarks(registry.select(None), BenchConfig(quick=True))
        metrics = result["workloads"]["micro.traced"]["metrics"]
        # only the single traced run feeds the metrics, not the timed repeats
        assert metrics["routes"]["delivered"] == 1
        assert metrics["routes"]["hops"]["p50"] == 4.0


class TestBenchFiles:
    def test_next_bench_path_appends(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_write_and_load_round_trip(self, tmp_path):
        result = {"schema": 1, "workloads": {}}
        path = write_result(result, tmp_path / "sub" / "BENCH_1.json")
        assert load_result(path) == result


def _fake_result(p50_by_name: dict) -> dict:
    return {
        "schema": 1,
        "workloads": {
            name: {"wall_time_s": {"p50": p50, "count": 5}}
            for name, p50 in p50_by_name.items()
        },
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        old = _fake_result({"a": 0.100, "b": 0.050})
        new = _fake_result({"a": 0.110, "b": 0.045})
        lines, regressed = compare_results(new, old, tolerance=0.15)
        assert regressed == []
        assert all("ok" in line for line in lines)

    def test_regression_detected(self):
        old = _fake_result({"a": 0.100, "b": 0.050})
        new = _fake_result({"a": 0.200, "b": 0.050})
        lines, regressed = compare_results(new, old, tolerance=0.15)
        assert regressed == ["a"]
        assert any("REGRESSED" in line and "x2.00" in line for line in lines)

    def test_boundary_is_not_regression(self):
        old = _fake_result({"a": 0.100})
        new = _fake_result({"a": 0.115})
        _, regressed = compare_results(new, old, tolerance=0.15)
        assert regressed == []

    def test_one_sided_workloads_never_fail(self):
        old = _fake_result({"retired": 0.1, "common": 0.1})
        new = _fake_result({"added": 0.2, "common": 0.1})
        lines, regressed = compare_results(new, old, tolerance=0.0)
        assert regressed == []
        removed = next(line for line in lines if "retired" in line)
        assert removed.startswith("- retired: removed")
        assert "in baseline only" in removed and "p50 100.00ms" in removed
        added = next(line for line in lines if "added" in line)
        assert added.startswith("+ added: added")
        assert "no baseline" in added and "p50 200.00ms" in added

    def test_one_sided_workload_without_wall_time(self):
        old = _fake_result({})
        new = {"schema": 1, "workloads": {"fresh": {}}}
        lines, regressed = compare_results(new, old)
        assert regressed == []
        assert lines == ["+ fresh: added (no baseline, no wall-time recorded)"]

    def test_missing_p50_reported_not_fatal(self):
        old = _fake_result({"a": 0.1})
        new = copy.deepcopy(old)
        new["workloads"]["a"]["wall_time_s"]["p50"] = None
        lines, regressed = compare_results(new, old)
        assert regressed == []
        assert any("no comparable wall-time" in line for line in lines)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_results(_fake_result({}), _fake_result({}), tolerance=-0.1)


class TestBenchCli:
    def _run(self, *argv: str) -> tuple[int, str]:
        lines: list[str] = []
        code = main(["bench", *argv], out=lines.append)
        return code, "\n".join(lines)

    def test_list(self):
        code, text = self._run("--list")
        assert code == 0
        assert "micro.esl_compute" in text and "[macro]" in text

    def test_quick_run_writes_bench_file(self, tmp_path):
        out_path = tmp_path / "BENCH_1.json"
        code, text = self._run(
            "--quick", "--only", "micro.wu_single_route",
            "--out", str(out_path), "--repeats", "2",
        )
        assert code == 0 and "wrote" in text
        result = load_result(out_path)
        assert set(result["workloads"]) == {"micro.wu_single_route"}
        assert result["workloads"]["micro.wu_single_route"]["hot_counters"][
            "router.routes"
        ] >= 1

    def test_compare_gate_pass_and_fail(self, tmp_path):
        out_path = tmp_path / "new.json"
        code, _ = self._run(
            "--quick", "--only", "micro.esl_compute",
            "--out", str(out_path), "--repeats", "2",
        )
        assert code == 0
        result = load_result(out_path)

        # generous baseline: passes
        slow = copy.deepcopy(result)
        for workload in slow["workloads"].values():
            workload["wall_time_s"]["p50"] *= 100
        baseline = tmp_path / "slow.json"
        baseline.write_text(json.dumps(slow))
        code, text = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--compare", str(baseline),
        )
        assert code == 0 and "compare: ok" in text

        # impossible baseline: fails non-zero
        fast = copy.deepcopy(result)
        for workload in fast["workloads"].values():
            workload["wall_time_s"]["p50"] /= 1e6
        baseline.write_text(json.dumps(fast))
        code, text = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--compare", str(baseline),
        )
        assert code == 1 and "FAIL" in text and "REGRESSED" in text

    def test_no_write_leaves_no_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _ = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--bench-dir", "benchmarks",
        )
        assert code == 0
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_compare_missing_baseline_is_a_clear_error(self, tmp_path):
        code, text = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--compare", str(tmp_path / "nope.json"),
        )
        assert code == 2
        assert "does not exist" in text
        assert "Traceback" not in text

    def test_compare_corrupt_baseline_is_a_clear_error(self, tmp_path):
        baseline = tmp_path / "corrupt.json"
        baseline.write_text("{not json")
        code, text = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--compare", str(baseline),
        )
        assert code == 2
        assert "not valid JSON" in text

    def test_compare_non_bench_json_is_a_clear_error(self, tmp_path):
        baseline = tmp_path / "other.json"
        baseline.write_text(json.dumps({"something": "else"}))
        code, text = self._run(
            "--quick", "--only", "micro.esl_compute", "--repeats", "2",
            "--no-write", "--compare", str(baseline),
        )
        assert code == 2
        assert "workloads" in text
