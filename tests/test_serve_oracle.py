"""Oracle cross-check: every served answer -- fresh, stale, or degraded
-- must be *correct for the generation it claims*.

The serving layer's robustness story is that it never returns a silently
wrong answer: under pressure it may answer from an old snapshot or from
the block model instead of the MCC model, but the answer always names
the generation and model it used.  This suite holds it to that claim.
Fault history is recorded per generation while a pipeline serves queries
across chaos churn (refreshes deliberately withheld so answers span many
stale generations); afterwards every answer is re-derived from scratch
at its claimed generation and checked against the *independent* batch
oracles -- :func:`repro.core.batched.batch_is_safe` for Definition 3 and
:func:`repro.faults.coverage.batch_minimal_path_exists` for minimal-path
existence -- plus a from-scratch run of the same decision cascade.
"""

import asyncio

import numpy as np
import pytest

from repro.core.batched import batch_is_safe
from repro.core.safety import compute_safety_levels
from repro.faults.coverage import batch_minimal_path_exists
from repro.faults.incremental import IncrementalFaultEngine
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType
from repro.mesh.topology import Mesh2D
from repro.serve import QueryPipeline, RoutingService

SIDE = 12
QUERIES_PER_PHASE = 12


def _serve_history(seed):
    """Serve queries across chaos churn; return every (result, claimed
    fault set) pair plus the mesh."""
    mesh = Mesh2D(SIDE, SIDE)
    rng = np.random.default_rng(seed)
    initial = uniform_faults(mesh, 6, rng, forbidden={mesh.center})
    service = RoutingService(mesh, initial)
    gen_to_faults = {0: frozenset(service.engine.faults)}

    # Chaos victims: usable nodes not in the initial pattern, so every
    # crash applies cleanly and the recorded history stays exact.
    victims = [
        (x, y) for x in range(SIDE) for y in range(SIDE)
        if not service.engine.unusable[x, y]
    ]
    rng.shuffle(victims)
    pairs = rng.integers(0, SIDE, size=(QUERIES_PER_PHASE * 4, 4))
    models = rng.random(QUERIES_PER_PHASE * 4) < 0.4

    async def scenario():
        # Refresher and heartbeat idle: the test drives refresh cadence
        # by hand so answers deterministically span stale generations.
        pipeline = QueryPipeline(
            service, max_staleness=None,
            refresh_delay_s=3600.0, heartbeat_s=3600.0,
        )
        await pipeline.start()
        results = []
        cursor = 0

        async def phase():
            nonlocal cursor
            for _ in range(QUERIES_PER_PHASE):
                x0, y0, x1, y1 = pairs[cursor]
                model = "mcc" if models[cursor] else "block"
                cursor += 1
                results.append(await pipeline.submit(
                    (int(x0), int(y0)), (int(x1), int(y1)), model=model,
                ))

        def churn(count):
            for _ in range(count):
                pipeline.ingest_fault("crash", victims.pop())
                gen_to_faults[service.generation] = frozenset(
                    service.engine.faults
                )

        try:
            await phase()                       # fresh: generation 0
            churn(3)
            await phase()                       # stale by 3 generations
            service.refresh()
            await phase()                       # fresh again: generation 3
            churn(2)
            service.refresh(include_mcc=False)  # degraded snapshot
            pipeline.breaker.open = True        # ... and a forced tier
            await phase()
        finally:
            await pipeline.drain()
        return results

    results = asyncio.run(scenario())
    return mesh, gen_to_faults, results


def _oracle_state(mesh, faults, model_used):
    """From-scratch blocked grid + safety levels for one generation."""
    engine = IncrementalFaultEngine(
        mesh, faults,
        mcc_types=(MCCType.TYPE_ONE,) if model_used == "mcc" else (),
    )
    if model_used == "mcc":
        blocked = engine.mcc_set(MCCType.TYPE_ONE).blocked
        return blocked, compute_safety_levels(mesh, blocked)
    return engine.unusable, engine.levels


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_served_answers_match_the_oracles_at_their_claimed_generation(seed):
    mesh, gen_to_faults, results = _serve_history(seed)
    assert len(results) == QUERIES_PER_PHASE * 4
    staleness_seen = set()
    degraded_seen = 0
    for result in results:
        assert result.ok, result
        answer = result.answer
        staleness_seen.add(answer.staleness)
        degraded_seen += answer.degraded
        faults = gen_to_faults[answer.generation]
        blocked, levels = _oracle_state(mesh, faults, answer.model_used)
        dest = np.array([answer.dest])

        if blocked[answer.source] or blocked[answer.dest]:
            assert answer.verdict == "blocked-endpoint"
            assert not answer.routable and answer.path is None
            continue
        assert answer.verdict != "blocked-endpoint"

        # Definition 3 against the independent batched oracle.
        is_safe = bool(batch_is_safe(levels, answer.source, dest)[0])
        assert (answer.verdict == "source-safe") == is_safe

        # A minimal-routable verdict must be realizable per the
        # reachability-DP oracle (the safe conditions are sufficient).
        if answer.routable and answer.minimal:
            assert bool(
                batch_minimal_path_exists(blocked, answer.source, dest)[0]
            )

        # The cascade re-run from scratch at the claimed generation.
        oracle = RoutingService(
            mesh, faults, mcc_model=(answer.model_used == "mcc"),
        )
        expected = oracle.answer(
            answer.source, answer.dest, model=answer.model_used,
            want_path=False,
        )
        assert answer.verdict == expected.verdict
        assert answer.strategy == expected.strategy
        assert answer.routable == expected.routable
        assert answer.minimal == expected.minimal

        # Witness integrity: a hop-by-hop minimal path over the claimed
        # generation's usable nodes.
        if answer.path is not None:
            assert answer.path[0] == answer.source
            assert answer.path[-1] == answer.dest
            assert not any(blocked[node] for node in answer.path)
            for (x0, y0), (x1, y1) in zip(answer.path, answer.path[1:]):
                assert abs(x0 - x1) + abs(y0 - y1) == 1
            if answer.minimal:
                assert len(answer.path) == answer.distance + 1

    # The history must actually have exercised the degraded tiers --
    # otherwise this test silently stops covering them.
    assert 0 in staleness_seen
    assert max(staleness_seen) >= 3
    assert degraded_seen > 0
