"""Channel-dependency-graph analysis: the classical results on real routers."""

import itertools

import numpy as np
import pytest

from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.routing.deadlock import (
    dependencies_from_choices,
    dependencies_from_paths,
    find_cycle,
    fully_adaptive_minimal_choices,
    is_deadlock_free,
    xy_choices,
)
from repro.routing.path import Path


def _all_pairs(mesh):
    nodes = list(mesh.nodes())
    return [(s, d) for s in nodes for d in nodes if s != d]


class TestCycleFinder:
    def test_empty_graph_acyclic(self):
        assert is_deadlock_free(set())

    def test_simple_cycle_detected(self):
        a, b, c = ((0, 0), (1, 0)), ((1, 0), (1, 1)), ((1, 1), (0, 0))
        edges = {(a, b), (b, c), (c, a)}
        cycle = find_cycle(edges)
        assert cycle is not None
        assert set(cycle) <= {a, b, c}
        assert len(cycle) == 3

    def test_dag_acyclic(self):
        a, b, c = ((0, 0), (1, 0)), ((1, 0), (1, 1)), ((1, 1), (2, 1))
        assert is_deadlock_free({(a, b), (b, c), (a, c)})


class TestClassicalResults:
    def test_xy_routing_is_deadlock_free(self):
        mesh = Mesh2D(5, 5)
        edges = dependencies_from_choices(mesh, xy_choices(mesh), _all_pairs(mesh))
        assert edges  # sanity: dependencies exist
        assert is_deadlock_free(edges)

    def test_fully_adaptive_minimal_has_turn_cycles(self):
        mesh = Mesh2D(4, 4)
        edges = dependencies_from_choices(
            mesh, fully_adaptive_minimal_choices(mesh), _all_pairs(mesh)
        )
        cycle = find_cycle(edges)
        assert cycle is not None
        assert len(cycle) >= 4  # the smallest turn cycle rounds a unit square

    def test_single_quadrant_monotone_is_deadlock_free(self):
        """Traffic restricted to one destination quadrant only turns between
        +x and +y: no cycle is possible."""
        mesh = Mesh2D(5, 5)
        pairs = [
            (s, d)
            for s, d in _all_pairs(mesh)
            if d[0] >= s[0] and d[1] >= s[1]  # quadrant-I traffic only
        ]
        edges = dependencies_from_choices(
            mesh, fully_adaptive_minimal_choices(mesh), pairs
        )
        assert edges
        assert is_deadlock_free(edges)


class TestWuProtocolDependencies:
    def test_quadrant_one_wu_routes_are_deadlock_free(self, rng):
        """All quadrant-I Wu-protocol routes on a faulty mesh stay within
        the +x/+y turn set, so their CDG is acyclic."""
        mesh = Mesh2D(14, 14)
        faults = uniform_faults(mesh, 14, rng)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        router = WuRouter(mesh, blocks)
        paths = []
        for source, dest in itertools.islice(
            (
                (s, d)
                for s in mesh.nodes()
                for d in mesh.nodes()
                if d[0] >= s[0] and d[1] >= s[1] and s != d
            ),
            0,
            None,
            7,  # subsample for speed
        ):
            if blocks.is_unusable(source) or blocks.is_unusable(dest):
                continue
            if not is_safe(levels, source, dest):
                continue
            paths.append(router.route(source, dest))
        assert paths
        edges = dependencies_from_paths(paths)
        assert is_deadlock_free(edges)

    def test_mixed_quadrant_traffic_can_cycle(self, rng):
        """Opposite-quadrant minimal traffic reintroduces all four turns;
        without virtual channels the combined CDG has cycles -- the reason
        the wormhole literature the paper cites needs them."""
        mesh = Mesh2D(6, 6)
        blocks = build_faulty_blocks(mesh, [])
        router = WuRouter(mesh, blocks)
        paths = []
        for s, d in _all_pairs(mesh):
            paths.append(router.route(s, d))
        edges = dependencies_from_paths(paths)
        assert find_cycle(edges) is not None


class TestDependenciesFromPaths:
    def test_single_path_chain(self):
        path = Path.of([(0, 0), (1, 0), (1, 1)])
        edges = dependencies_from_paths([path])
        assert edges == {((((0, 0)), (1, 0)), ((1, 0), (1, 1)))}

    def test_zero_and_one_hop_paths_contribute_nothing(self):
        assert dependencies_from_paths([Path.of([(0, 0)])]) == set()
        assert dependencies_from_paths([Path.of([(0, 0), (1, 0)])]) == set()
