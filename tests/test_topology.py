"""Unit tests for repro.mesh.topology."""

import pytest

from repro.mesh.geometry import Direction, Rect
from repro.mesh.topology import Mesh2D


class TestConstruction:
    def test_dimensions(self):
        mesh = Mesh2D(7, 5)
        assert mesh.size == 35
        assert mesh.bounds == Rect(0, 6, 0, 4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 5)
        with pytest.raises(ValueError):
            Mesh2D(5, -1)

    def test_center(self):
        assert Mesh2D(200, 200).center == (100, 100)
        assert Mesh2D(5, 5).center == (2, 2)


class TestBoundsAndIndexing:
    def test_in_bounds(self):
        mesh = Mesh2D(4, 3)
        assert mesh.in_bounds((0, 0))
        assert mesh.in_bounds((3, 2))
        assert not mesh.in_bounds((4, 0))
        assert not mesh.in_bounds((0, 3))
        assert not mesh.in_bounds((-1, 0))

    def test_require_in_bounds(self):
        mesh = Mesh2D(4, 3)
        with pytest.raises(ValueError):
            mesh.require_in_bounds((4, 0))

    def test_index_roundtrip(self):
        mesh = Mesh2D(6, 4)
        for node in mesh.nodes():
            assert mesh.coord_of(mesh.index_of(node)) == node
        assert len(list(mesh.nodes())) == mesh.size

    def test_index_out_of_range(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            mesh.coord_of(9)
        with pytest.raises(ValueError):
            mesh.coord_of(-1)


class TestAdjacency:
    def test_interior_degree_four(self):
        mesh = Mesh2D(5, 5)
        assert mesh.degree((2, 2)) == 4
        assert len(mesh.neighbors((2, 2))) == 4

    def test_corner_degree_two(self):
        mesh = Mesh2D(5, 5)
        assert mesh.degree((0, 0)) == 2
        assert set(mesh.neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_edge_degree_three(self):
        mesh = Mesh2D(5, 5)
        assert mesh.degree((0, 2)) == 3
        assert mesh.degree((2, 4)) == 3

    def test_neighbor_direction(self):
        mesh = Mesh2D(5, 5)
        assert mesh.neighbor((2, 2), Direction.EAST) == (3, 2)
        assert mesh.neighbor((4, 2), Direction.EAST) is None

    def test_neighbor_items_cover_all_directions(self):
        mesh = Mesh2D(5, 5)
        items = dict(mesh.neighbor_items((2, 2)))
        assert items == {
            Direction.EAST: (3, 2),
            Direction.WEST: (1, 2),
            Direction.NORTH: (2, 3),
            Direction.SOUTH: (2, 1),
        }

    def test_are_adjacent(self):
        mesh = Mesh2D(5, 5)
        assert mesh.are_adjacent((1, 1), (1, 2))
        assert not mesh.are_adjacent((1, 1), (2, 2))
        assert not mesh.are_adjacent((1, 1), (1, 1))


class TestPreferredSpare:
    """The paper's preferred/spare neighbour classification (Sec. 2)."""

    def test_quadrant_one_preferred(self):
        mesh = Mesh2D(10, 10)
        dirs = mesh.preferred_directions((3, 3), (7, 8))
        assert set(dirs) == {Direction.EAST, Direction.NORTH}

    def test_straight_line_single_preferred(self):
        mesh = Mesh2D(10, 10)
        assert mesh.preferred_directions((3, 3), (9, 3)) == [Direction.EAST]
        assert mesh.preferred_directions((3, 3), (3, 0)) == [Direction.SOUTH]

    def test_no_preferred_at_destination(self):
        mesh = Mesh2D(10, 10)
        assert mesh.preferred_directions((3, 3), (3, 3)) == []

    def test_spare_complements_preferred(self):
        mesh = Mesh2D(10, 10)
        current, dest = (3, 3), (7, 8)
        preferred = set(mesh.preferred_directions(current, dest))
        spare = set(mesh.spare_directions(current, dest))
        assert preferred & spare == set()
        assert preferred | spare == set(Direction)  # interior node

    def test_spare_respects_mesh_edge(self):
        mesh = Mesh2D(10, 10)
        spare = mesh.spare_directions((0, 0), (5, 5))
        assert spare == []  # West and South fall off the mesh

    def test_preferred_neighbors_reduce_distance(self):
        mesh = Mesh2D(10, 10)
        current, dest = (4, 4), (8, 1)
        for neighbor in mesh.preferred_neighbors(current, dest):
            assert mesh.distance(neighbor, dest) == mesh.distance(current, dest) - 1
        for neighbor in mesh.spare_neighbors(current, dest):
            assert mesh.distance(neighbor, dest) == mesh.distance(current, dest) + 1
