"""Systematic four-quadrant coverage for every decision procedure and the
router: the library is written in the canonical frame, so each quadrant
exercises a different reflection path."""

import numpy as np
import pytest

from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.routing import WuRouter, route_with_decision
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.frames import Frame
from repro.mesh.geometry import Quadrant, quadrant_of
from repro.mesh.topology import Mesh2D

SIDE = 26
CENTER = (13, 13)

#: One representative destination region per quadrant (relative to CENTER).
QUADRANT_REGIONS = {
    Quadrant.I: ((14, 25), (14, 25)),
    Quadrant.II: ((0, 12), (14, 25)),
    Quadrant.III: ((0, 12), (0, 12)),
    Quadrant.IV: ((14, 25), (0, 12)),
}


@pytest.fixture(scope="module")
def scenario():
    mesh = Mesh2D(SIDE, SIDE)
    rng = np.random.default_rng(777)
    faults = uniform_faults(mesh, 30, rng, forbidden={CENTER})
    while build_faulty_blocks(mesh, faults).is_unusable(CENTER):
        faults = uniform_faults(mesh, 30, rng, forbidden={CENTER})
    blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    return mesh, blocks, levels, np.random.default_rng(778)


def _random_dest(rng, quadrant, blocks):
    (xlo, xhi), (ylo, yhi) = QUADRANT_REGIONS[quadrant]
    while True:
        dest = (int(rng.integers(xlo, xhi + 1)), int(rng.integers(ylo, yhi + 1)))
        if not blocks.is_unusable(dest):
            return dest


@pytest.mark.parametrize("quadrant", list(Quadrant))
class TestPerQuadrant:
    def test_frame_places_dest_in_quadrant_one(self, scenario, quadrant):
        _, blocks, _, rng = scenario
        for _ in range(20):
            dest = _random_dest(rng, quadrant, blocks)
            assert quadrant_of(CENTER, dest) is quadrant
            frame = Frame.for_pair(CENTER, dest)
            lx, ly = frame.to_local(dest)
            assert lx >= 0 and ly >= 0

    def test_safe_condition_sound(self, scenario, quadrant):
        mesh, blocks, levels, rng = scenario
        hits = 0
        for _ in range(60):
            dest = _random_dest(rng, quadrant, blocks)
            if is_safe(levels, CENTER, dest):
                hits += 1
                assert minimal_path_exists(blocks.unusable, CENTER, dest)
        assert hits > 0

    def test_wu_routing_delivers(self, scenario, quadrant):
        mesh, blocks, levels, rng = scenario
        router = WuRouter(mesh, blocks)
        routed = 0
        for _ in range(40):
            dest = _random_dest(rng, quadrant, blocks)
            if not is_safe(levels, CENTER, dest):
                continue
            path = router.route(CENTER, dest)
            assert path.is_minimal and path.avoids(blocks.unusable)
            routed += 1
        assert routed > 0

    def test_extension1_sound_and_routable(self, scenario, quadrant):
        mesh, blocks, levels, rng = scenario
        router = WuRouter(mesh, blocks)
        for _ in range(40):
            dest = _random_dest(rng, quadrant, blocks)
            decision = extension1_decision(mesh, levels, blocks.unusable, CENTER, dest)
            if decision.kind is DecisionKind.UNSAFE:
                continue
            path = route_with_decision(router, decision, blocked=blocks.unusable)
            if decision.ensures_minimal:
                assert path.is_minimal
            else:
                assert path.is_sub_minimal

    def test_extension2_sound(self, scenario, quadrant):
        mesh, blocks, levels, rng = scenario
        for _ in range(40):
            dest = _random_dest(rng, quadrant, blocks)
            decision = extension2_decision(mesh, levels, CENTER, dest, 1)
            if decision.kind is not DecisionKind.UNSAFE:
                assert minimal_path_exists(blocks.unusable, CENTER, dest)

    def test_extension3_sound(self, scenario, quadrant):
        mesh, blocks, levels, rng = scenario
        (xlo, xhi), (ylo, yhi) = QUADRANT_REGIONS[quadrant]
        from repro.core.pivots import recursive_center_pivots
        from repro.mesh.geometry import Rect

        pivots = recursive_center_pivots(Rect(xlo, xhi, ylo, yhi), 2)
        for _ in range(40):
            dest = _random_dest(rng, quadrant, blocks)
            decision = extension3_decision(
                mesh, levels, blocks.unusable, CENTER, dest, pivots
            )
            if decision.kind is not DecisionKind.UNSAFE:
                assert minimal_path_exists(blocks.unusable, CENTER, dest)


class TestBlockHelpers:
    def test_adjacent_and_corner_nodes(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])  # block [4:5, 4:5]
        block = blocks.blocks[0]
        adjacent = set(block.adjacent_nodes(mesh))
        assert adjacent == {
            (4, 3), (5, 3), (4, 6), (5, 6), (3, 4), (3, 5), (6, 4), (6, 5),
        }
        corners = set(block.corner_nodes(mesh))
        assert corners == {(3, 3), (3, 6), (6, 3), (6, 6)}

    def test_corner_nodes_clipped_at_mesh_edge(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(0, 0)])
        block = blocks.blocks[0]
        assert set(block.corner_nodes(mesh)) == {(1, 1)}
        assert set(block.adjacent_nodes(mesh)) == {(1, 0), (0, 1)}
