"""Unit tests for the paper's strategies 1-4."""

import pytest

from repro.core.conditions import DecisionKind
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.safety import compute_safety_levels
from repro.core.strategies import Strategy, StrategyConfig, select_pivots, strategy_decision
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D


def _setup(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return compute_safety_levels(mesh, blocks.unusable), blocks


class TestStrategyComposition:
    def test_extension_usage_table(self):
        assert Strategy.S1.uses_extension1 and Strategy.S1.uses_extension2
        assert not Strategy.S1.uses_extension3
        assert Strategy.S2.uses_extension1 and Strategy.S2.uses_extension3
        assert not Strategy.S2.uses_extension2
        assert Strategy.S3.uses_extension2 and Strategy.S3.uses_extension3
        assert not Strategy.S3.uses_extension1
        assert all(
            (Strategy.S4.uses_extension1, Strategy.S4.uses_extension2, Strategy.S4.uses_extension3)
        )

    def test_strategy4_dominates(self, rng):
        """Strategy 4 succeeds whenever any single extension does."""
        mesh = Mesh2D(30, 30)
        config = StrategyConfig(segment_size=5, pivot_levels=3, pivot_scheme="center")
        region = Rect(15, 29, 15, 29)
        pivots = select_pivots(config, region)
        for _ in range(3):
            faults = uniform_faults(mesh, 40, rng)
            levels, blocks = _setup(mesh, faults)
            for _ in range(60):
                source = (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
                dest = (int(rng.integers(15, 30)), int(rng.integers(15, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                individual = [
                    extension1_decision(
                        mesh, levels, blocks.unusable, source, dest, allow_sub_minimal=False
                    ),
                    extension2_decision(mesh, levels, source, dest, config.segment_size),
                    extension3_decision(mesh, levels, blocks.unusable, source, dest, pivots),
                ]
                combined = strategy_decision(
                    Strategy.S4, mesh, levels, blocks.unusable, source, dest, pivots, config
                )
                if any(d.kind is not DecisionKind.UNSAFE for d in individual):
                    assert combined.kind is not DecisionKind.UNSAFE

    def test_soundness_all_strategies(self, rng):
        mesh = Mesh2D(30, 30)
        config = StrategyConfig(pivot_scheme="center")
        region = Rect(15, 29, 15, 29)
        pivots = select_pivots(config, region)
        faults = uniform_faults(mesh, 35, rng)
        levels, blocks = _setup(mesh, faults)
        for strategy in Strategy:
            for _ in range(50):
                source = (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
                dest = (int(rng.integers(15, 30)), int(rng.integers(15, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                decision = strategy_decision(
                    strategy, mesh, levels, blocks.unusable, source, dest, pivots, config
                )
                if decision.ensures_minimal:
                    assert minimal_path_exists(blocks.unusable, source, dest)

    def test_strategies_without_pivots(self, rng):
        """S1 never consults the pivot list; an empty list must be fine."""
        mesh = Mesh2D(20, 20)
        faults = uniform_faults(mesh, 20, rng)
        levels, blocks = _setup(mesh, faults)
        decision = strategy_decision(
            Strategy.S1, mesh, levels, blocks.unusable, (0, 0), (15, 15), pivots=[]
        )
        assert decision.kind in set(DecisionKind)


class TestStrategyConfig:
    def test_defaults_match_paper(self):
        config = StrategyConfig()
        assert config.segment_size == 5
        assert config.pivot_levels == 3
        assert config.pivot_scheme == "random"
        assert not config.allow_sub_minimal

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            StrategyConfig(pivot_scheme="grid")

    def test_select_pivots_center(self):
        config = StrategyConfig(pivot_scheme="center", pivot_levels=2)
        pivots = select_pivots(config, Rect(0, 99, 0, 99))
        assert len(pivots) == 5

    def test_select_pivots_random_needs_rng(self):
        config = StrategyConfig(pivot_scheme="random")
        with pytest.raises(ValueError):
            select_pivots(config, Rect(0, 99, 0, 99))

    def test_select_pivots_random(self, rng):
        config = StrategyConfig(pivot_scheme="random", pivot_levels=3)
        pivots = select_pivots(config, Rect(0, 99, 0, 99), rng)
        assert 15 <= len(pivots) <= 21
