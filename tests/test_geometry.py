"""Unit tests for repro.mesh.geometry."""

import pytest

from repro.mesh.geometry import (
    Direction,
    Quadrant,
    Rect,
    chebyshev_distance,
    manhattan_distance,
    quadrant_of,
)


class TestDirection:
    def test_deltas_match_orientation(self):
        assert (Direction.EAST.dx, Direction.EAST.dy) == (1, 0)
        assert (Direction.WEST.dx, Direction.WEST.dy) == (-1, 0)
        assert (Direction.NORTH.dx, Direction.NORTH.dy) == (0, 1)
        assert (Direction.SOUTH.dx, Direction.SOUTH.dy) == (0, -1)

    def test_opposites(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction
            assert direction.opposite.dx == -direction.dx
            assert direction.opposite.dy == -direction.dy

    def test_step(self):
        assert Direction.EAST.step((3, 4)) == (4, 4)
        assert Direction.NORTH.step((3, 4), hops=5) == (3, 9)
        assert Direction.SOUTH.step((3, 4), hops=2) == (3, 2)

    def test_horizontal_vertical_partition(self):
        horizontal = {d for d in Direction if d.is_horizontal}
        vertical = {d for d in Direction if d.is_vertical}
        assert horizontal == {Direction.EAST, Direction.WEST}
        assert vertical == {Direction.NORTH, Direction.SOUTH}

    def test_between_adjacent(self):
        assert Direction.between((2, 2), (3, 2)) is Direction.EAST
        assert Direction.between((2, 2), (2, 1)) is Direction.SOUTH

    def test_between_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            Direction.between((0, 0), (1, 1))
        with pytest.raises(ValueError):
            Direction.between((0, 0), (0, 0))


class TestQuadrant:
    def test_quadrant_of_all_sectors(self):
        source = (5, 5)
        assert quadrant_of(source, (8, 9)) is Quadrant.I
        assert quadrant_of(source, (2, 9)) is Quadrant.II
        assert quadrant_of(source, (2, 1)) is Quadrant.III
        assert quadrant_of(source, (8, 1)) is Quadrant.IV

    def test_axis_ties_fold_toward_quadrant_one(self):
        source = (5, 5)
        assert quadrant_of(source, (8, 5)) is Quadrant.I  # due East
        assert quadrant_of(source, (5, 9)) is Quadrant.I  # due North
        assert quadrant_of(source, (5, 5)) is Quadrant.I  # self

    def test_mcc_type_mapping(self):
        assert Quadrant.I.uses_type_one_mcc
        assert Quadrant.III.uses_type_one_mcc
        assert not Quadrant.II.uses_type_one_mcc
        assert not Quadrant.IV.uses_type_one_mcc


class TestDistances:
    def test_manhattan(self):
        assert manhattan_distance((0, 0), (3, 4)) == 7
        assert manhattan_distance((3, 4), (0, 0)) == 7
        assert manhattan_distance((2, 2), (2, 2)) == 0

    def test_chebyshev(self):
        assert chebyshev_distance((0, 0), (3, 4)) == 4
        assert chebyshev_distance((1, 1), (2, 2)) == 1


class TestRect:
    def test_paper_notation_roundtrip(self):
        rect = Rect(2, 6, 3, 6)
        assert str(rect) == "[2:6, 3:6]"
        assert rect.width == 5 and rect.height == 4 and rect.area == 20

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(3, 2, 0, 0)
        with pytest.raises(ValueError):
            Rect(0, 0, 5, 4)

    def test_single_node_rect(self):
        rect = Rect(4, 4, 7, 7)
        assert rect.area == 1
        assert rect.contains((4, 7))
        assert not rect.contains((4, 8))

    def test_bounding(self):
        rect = Rect.bounding([(2, 5), (6, 3), (3, 6)])
        assert rect == Rect(2, 6, 3, 6)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_contains_rect(self):
        outer = Rect(0, 10, 0, 10)
        assert outer.contains_rect(Rect(2, 5, 3, 7))
        assert not Rect(2, 5, 3, 7).contains_rect(outer)

    def test_intersects_and_touches(self):
        a = Rect(0, 2, 0, 2)
        assert a.intersects(Rect(2, 4, 2, 4))  # shares corner cell
        assert not a.intersects(Rect(3, 4, 0, 2))  # adjacent, not overlapping
        assert a.touches_or_intersects(Rect(3, 4, 0, 2))
        assert a.touches_or_intersects(Rect(3, 4, 3, 4))  # diagonal touch
        assert not a.touches_or_intersects(Rect(4, 5, 0, 2))  # gap of one

    def test_union_and_clip(self):
        a = Rect(0, 2, 0, 2)
        b = Rect(1, 4, 1, 5)
        assert a.union(b) == Rect(0, 4, 0, 5)
        assert a.clip(b) == Rect(1, 2, 1, 2)
        assert a.clip(Rect(5, 6, 5, 6)) is None

    def test_expand(self):
        assert Rect(2, 3, 2, 3).expand(1) == Rect(1, 4, 1, 4)

    def test_coords_enumerates_area(self):
        rect = Rect(1, 2, 5, 7)
        coords = list(rect.coords())
        assert len(coords) == rect.area
        assert set(coords) == {(x, y) for x in (1, 2) for y in (5, 6, 7)}

    def test_spans(self):
        rect = Rect(2, 6, 3, 6)
        assert rect.spans_columns(3, 5)
        assert not rect.spans_columns(0, 5)
        assert rect.spans_rows(3, 6)
        assert not rect.spans_rows(3, 7)

    def test_corners(self):
        rect = Rect(2, 6, 3, 6)
        assert rect.sw_corner == (2, 3)
        assert rect.ne_corner == (6, 6)

    def test_ordering_is_total(self):
        rects = [Rect(1, 2, 1, 2), Rect(0, 9, 0, 9), Rect(0, 1, 5, 6)]
        assert sorted(rects)[0] == Rect(0, 1, 5, 6)
