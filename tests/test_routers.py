"""Unit tests for the greedy baseline and the oracle routers."""

import numpy as np
import pytest

from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.routing.oracle import MonotoneOracleRouter, shortest_path_bfs
from repro.routing.router import (
    GreedyAdaptiveRouter,
    RoutingError,
    balanced_tie_breaker,
    x_first_tie_breaker,
)


def _blocked(n, m, cells=()):
    grid = np.zeros((n, m), dtype=bool)
    for cell in cells:
        grid[cell] = True
    return grid


class TestGreedyAdaptive:
    def test_routes_minimally_without_faults(self):
        mesh = Mesh2D(10, 10)
        router = GreedyAdaptiveRouter(mesh, _blocked(10, 10))
        path = router.route((1, 1), (7, 5))
        assert path.is_minimal

    def test_gets_stuck_against_block(self):
        """The paper's motivating failure: greedy enters a dead region."""
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])  # block [4:5, 4:5]
        # x-first greedy from (4, 0) to (8, 5) walks straight... from (4,0)
        # East to (8,0)? x-first reaches x=8 then goes North cleanly.  Force
        # the trap: destination (8, 5) from (0, 3) with x-first goes East
        # along y=3 under the block -- fine.  The real trap: dest (5, 8)
        # straight North of the block; x-first from (5, 0) aligns x first
        # (already aligned) then pushes North into the block face.
        router = GreedyAdaptiveRouter(mesh, blocks.unusable, tie_breaker=x_first_tie_breaker)
        with pytest.raises(RoutingError):
            router.route((5, 0), (5, 8))

    def test_tie_breakers(self):
        assert balanced_tie_breaker((0, 0), (5, 2), list(_dirs("EN"))) is _dirs("E")[0]
        assert balanced_tie_breaker((0, 0), (2, 5), list(_dirs("EN"))) is _dirs("N")[0]
        assert x_first_tie_breaker((0, 0), (2, 5), list(_dirs("NE"))) is _dirs("E")[0]


class TestBFS:
    def test_shortest_around_block(self):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [(x, 4) for x in range(9)])
        path = shortest_path_bfs(mesh, blocks.unusable, (0, 0), (0, 9))
        assert path is not None
        assert path.hops == 9 + 2 * 9  # around the East end of the wall

    def test_unreachable(self):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [(x, 4) for x in range(10)])
        assert shortest_path_bfs(mesh, blocks.unusable, (0, 0), (0, 9)) is None

    def test_blocked_endpoints(self):
        mesh = Mesh2D(5, 5)
        assert shortest_path_bfs(mesh, _blocked(5, 5, [(0, 0)]), (0, 0), (4, 4)) is None

    def test_trivial(self):
        mesh = Mesh2D(5, 5)
        path = shortest_path_bfs(mesh, _blocked(5, 5), (2, 2), (2, 2))
        assert path is not None and path.hops == 0


class TestMonotoneOracle:
    def test_routes_everything_the_dp_allows(self, rng):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, 30, rng)
            blocks = build_faulty_blocks(mesh, faults)
            router = MonotoneOracleRouter(mesh, blocks.unusable)
            for _ in range(50):
                source = (int(rng.integers(0, 25)), int(rng.integers(0, 25)))
                dest = (int(rng.integers(0, 25)), int(rng.integers(0, 25)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                if minimal_path_exists(blocks.unusable, source, dest):
                    path = router.route(source, dest)
                    assert path.is_minimal
                    assert path.avoids(blocks.unusable)
                else:
                    with pytest.raises(RoutingError):
                        router.route(source, dest)

    def test_works_on_mcc_staircases(self, rng):
        """The oracle router is exact for non-rectangular obstacles too."""
        from repro.faults.mcc import MCCType, build_mccs

        mesh = Mesh2D(25, 25)
        faults = uniform_faults(mesh, 40, rng)
        mccs = build_mccs(mesh, faults, MCCType.TYPE_ONE)
        router = MonotoneOracleRouter(mesh, mccs.blocked)
        routed = 0
        for _ in range(60):
            source = (int(rng.integers(0, 12)), int(rng.integers(0, 12)))
            dest = (int(rng.integers(12, 25)), int(rng.integers(12, 25)))
            if mccs.is_blocked(source) or mccs.is_blocked(dest):
                continue
            if minimal_path_exists(mccs.blocked, source, dest):
                path = router.route(source, dest)
                assert path.is_minimal and path.avoids(mccs.blocked)
                routed += 1
        assert routed > 0


def _dirs(letters):
    from repro.mesh.geometry import Direction

    mapping = {
        "E": Direction.EAST,
        "W": Direction.WEST,
        "N": Direction.NORTH,
        "S": Direction.SOUTH,
    }
    return [mapping[ch] for ch in letters]
