"""Unit tests for Extension 2's region/segment machinery."""

import pytest

from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.core.segments import build_axis_segments
from repro.faults.blocks import build_faulty_blocks
from repro.mesh.frames import Frame
from repro.mesh.geometry import Direction
from repro.mesh.topology import Mesh2D


def _setup(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return compute_safety_levels(mesh, blocks.unusable), blocks


class TestRegionExtent:
    def test_region_ends_at_block(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(7, 0)])
        frame = Frame.for_pair((0, 0), (10, 10))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
        assert segments.region_length == 6  # nodes (1,0)..(6,0)
        assert [s.offset for s in segments.samples] == list(range(1, 7))

    def test_region_ends_at_mesh_edge(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(5, 5)])
        frame = Frame.for_pair((3, 0), (10, 10))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
        assert segments.region_length == 12 - 1 - 3  # to the East edge

    def test_reflected_frame_walks_the_right_way(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(2, 6)])  # West of the source at (8, 6)
        frame = Frame.for_pair((8, 6), (0, 0))  # quadrant III
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
        # Local East is global West: region ends at the block at x=2.
        assert segments.region_length == 5  # (7..3, 6)
        assert segments.samples[0].node == (7, 6)

    def test_north_axis(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(0, 9)])
        frame = Frame.for_pair((0, 0), (10, 10))
        segments = build_axis_segments(mesh, levels, frame, Direction.NORTH, 1)
        assert segments.region_length == 8
        assert segments.samples[3].node == (0, 4)


class TestSegmentation:
    def test_size_one_samples_every_node(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
        assert len(segments.samples) == 10

    def test_size_five_groups(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 5)
        assert len(segments.samples) == 2  # region of 10 -> two segments
        assert 1 <= segments.samples[0].offset <= 5
        assert 6 <= segments.samples[1].offset <= 10

    def test_max_is_single_segment(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, None)
        assert len(segments.samples) == 1

    def test_representative_has_max_perpendicular_level(self):
        mesh = Mesh2D(20, 20)
        # Blocks at different heights above the x axis: (2, 3) caps N of x=2
        # at 2; column 4 is clear so its N is unbounded.
        levels, _ = _setup(mesh, [(2, 3), (11, 0)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, None)
        sample = segments.samples[0]
        assert sample.level == UNBOUNDED  # some clear column exists
        assert sample.node[0] != 2

    def test_default_tie_break_keeps_farthest(self):
        """Paper-faithful default: among equal levels keep the far node --
        the "(max)" variation's representative then usually lies beyond the
        destination column, reproducing Figure 10's fall-back behaviour."""
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0)])  # all columns clear to the North
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, None)
        assert segments.samples[0].offset == segments.region_length

    def test_near_tie_break_prefers_source_side(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(
            mesh, levels, frame, Direction.EAST, None, tie_break="near"
        )
        assert segments.samples[0].offset == 1

    def test_four_directional_widens_candidates(self):
        """The paper's second variation: up to four representatives per
        segment, one per direction maximum."""
        mesh = Mesh2D(20, 20)
        # Region [1..10]; make different nodes maximal in different
        # directions: a block south of column 3 and north of column 7.
        levels, _ = _setup(mesh, [(11, 0), (3, 5), (7, 9)])
        frame = Frame.for_pair((0, 0), (15, 15))
        single = build_axis_segments(mesh, levels, frame, Direction.EAST, None)
        multi = build_axis_segments(
            mesh, levels, frame, Direction.EAST, None, four_directional=True
        )
        assert len(multi.samples) >= len(single.samples)
        assert len(multi.samples) <= 4
        single_offsets = {s.offset for s in single.samples}
        assert single_offsets <= {s.offset for s in multi.samples}

    def test_four_directional_levels_stay_perpendicular(self):
        """Extra representatives still report the perpendicular level the
        Theorem 1b decision reads."""
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0), (3, 5)])
        frame = Frame.for_pair((0, 0), (15, 15))
        multi = build_axis_segments(
            mesh, levels, frame, Direction.EAST, None, four_directional=True
        )
        for sample in multi.samples:
            assert sample.level == int(levels.north[sample.node])

    def test_invalid_tie_break(self):
        mesh = Mesh2D(5, 5)
        levels, _ = _setup(mesh, [])
        frame = Frame.for_pair((0, 0), (4, 4))
        with pytest.raises(ValueError):
            build_axis_segments(mesh, levels, frame, Direction.EAST, 1, tie_break="middle")


class TestBestFor:
    def test_best_for_filters_offset_and_level(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _setup(mesh, [(11, 0), (5, 8)])
        frame = Frame.for_pair((0, 0), (15, 15))
        segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
        # Column 5 has N level 7; other columns unbounded.
        usable = segments.best_for(max_offset=10, required_level=9)
        assert usable is not None and usable.node[0] != 5
        constrained = segments.best_for(max_offset=5, required_level=8)
        assert constrained is not None
        assert constrained.offset <= 5
        nothing = segments.best_for(max_offset=0, required_level=0)
        assert nothing is None


class TestValidation:
    def test_bad_axis_raises(self):
        mesh = Mesh2D(5, 5)
        levels, _ = _setup(mesh, [])
        frame = Frame.for_pair((0, 0), (4, 4))
        with pytest.raises(ValueError):
            build_axis_segments(mesh, levels, frame, Direction.WEST, 1)

    def test_bad_segment_size_raises(self):
        mesh = Mesh2D(5, 5)
        levels, _ = _setup(mesh, [])
        frame = Frame.for_pair((0, 0), (4, 4))
        with pytest.raises(ValueError):
            build_axis_segments(mesh, levels, frame, Direction.EAST, 0)
