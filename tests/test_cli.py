"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def _run(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_coordinate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--dest", "banana"])

    def test_bad_figure_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestScenario:
    def test_renders_blocks(self):
        code, output = _run(["scenario", "--side", "16", "--faults", "10", "--seed", "4"])
        assert code == 0
        assert "blocks" in output
        assert "#" in output

    def test_renders_mcc(self):
        code, output = _run(
            ["scenario", "--side", "16", "--faults", "12", "--seed", "4", "--mcc"]
        )
        assert code == 0
        assert "can't-reach" in output


class TestRoute:
    def test_wu_route(self):
        code, output = _run(
            ["route", "--side", "16", "--faults", "8", "--seed", "3", "--dest", "14,14"]
        )
        assert code == 0
        assert "delivered" in output and "minimal" in output
        assert "D" in output

    @pytest.mark.parametrize("router", ["greedy", "detour", "oracle"])
    def test_other_routers(self, router):
        code, output = _run(
            [
                "route", "--side", "16", "--faults", "5", "--seed", "3",
                "--dest", "14,14", "--router", router,
            ]
        )
        assert code == 0
        assert "delivered" in output

    def test_source_flag(self):
        code, output = _run(
            [
                "route", "--side", "16", "--faults", "0", "--seed", "1",
                "--source", "2,2", "--dest", "5,5",
            ]
        )
        assert code == 0
        assert "6 hops" in output

    def test_endpoint_errors(self):
        code, output = _run(
            [
                "route", "--side", "16", "--faults", "0", "--seed", "1",
                "--dest", "99,99",
            ]
        )
        assert code == 2
        assert "outside the mesh" in output


class TestTrace:
    def test_safe_source_trace(self):
        code, output = _run(["trace", "0,0", "7,7", "--faults", "3", "--seed", "1"])
        assert code == 0
        assert "Definition 3 (safe source): fires" in output
        assert "hop   1:" in output
        assert "delivered in" in output

    def test_endpoint_errors(self):
        code, output = _run(["trace", "0,0", "99,99", "--faults", "3", "--seed", "1"])
        assert code == 2
        assert "outside the mesh" in output

    def test_jsonl_dump_round_trips(self, tmp_path):
        from repro.obs import read_jsonl

        target = tmp_path / "trace.jsonl"
        code, output = _run(
            ["trace", "0,0", "7,7", "--faults", "3", "--seed", "1", "--jsonl", str(target)]
        )
        assert code == 0
        events = read_jsonl(target)
        assert sum(1 for e in events if e.kind == "hop") == 14
        assert f"wrote {len(events)} events" in output


class TestStats:
    def test_table(self):
        code, output = _run(
            ["stats", "--side", "16", "--faults", "10", "--seed", "3", "--routes", "10"]
        )
        assert code == 0
        for section in ("events", "protocol messages", "routes", "spans"):
            assert section in output

    def test_json_snapshot(self):
        import json

        code, output = _run(
            ["stats", "--side", "16", "--faults", "10", "--seed", "3",
             "--routes", "5", "--json"]
        )
        assert code == 0
        snapshot = json.loads(output)
        assert snapshot["routes"]["delivered"] >= 1
        assert "esl" in snapshot["protocol_messages"]


class TestChaosVerb:
    def test_converges_and_exits_zero(self):
        code, output = _run(
            ["chaos", "--side", "12", "--faults", "5", "--seed", "3",
             "--loss", "0.05", "--events", "6"]
        )
        assert code == 0
        assert "CONVERGED" in output

    def test_no_schedule(self):
        code, output = _run(
            ["chaos", "--side", "10", "--faults", "4", "--events", "0",
             "--loss", "0.02"]
        )
        assert code == 0
        assert "0 chaos events" in output

    def test_rejects_bad_probability(self):
        code, output = _run(["chaos", "--side", "10", "--loss", "1.5"])
        assert code == 2
        assert "probability" in output

    def test_stats_chaos_emits_hot_counters(self):
        code, output = _run(
            ["stats", "--side", "12", "--faults", "6", "--seed", "3",
             "--routes", "5", "--chaos", "0.05", "--prom"]
        )
        assert code == 0
        assert 'repro_hot_counter_total{name="chaos.retries"}' in output
        assert 'repro_hot_counter_total{name="chaos.drops"}' in output


class TestStatsOut:
    def test_prom_out_writes_valid_exposition(self, tmp_path):
        from tests.promtext import parse

        target = tmp_path / "deep" / "metrics.prom"
        target.parent.mkdir()
        code, output = _run(
            ["stats", "--side", "12", "--faults", "5", "--seed", "3",
             "--routes", "5", "--prom", "--out", str(target)]
        )
        assert code == 0
        assert f"wrote {target}" in output
        parse(target.read_text())
        # Atomic write leaves no temp files behind.
        assert [p.name for p in target.parent.iterdir()] == ["metrics.prom"]

    def test_out_requires_prom(self, tmp_path):
        code, output = _run(
            ["stats", "--side", "12", "--faults", "5", "--seed", "3",
             "--routes", "5", "--out", str(tmp_path / "x.prom")]
        )
        assert code == 2
        assert "add --prom" in output

    def test_unwritable_out_is_run_failure(self, tmp_path):
        code, output = _run(
            ["stats", "--side", "12", "--faults", "5", "--seed", "3",
             "--routes", "5", "--prom", "--out", str(tmp_path)]  # a directory
        )
        assert code == 1
        assert "error" in output.lower()


class TestTopVerb:
    def test_once_renders_final_panel(self):
        code, output = _run(
            ["top", "--side", "10", "--faults", "4", "--seed", "3",
             "--loss", "0.05", "--events", "4", "--once", "--no-color"]
        )
        assert code == 0
        assert "repro top  t=" in output
        assert "net.carried" in output
        assert "CONVERGED" in output
        assert "\x1b[" not in output

    def test_refresh_validation(self):
        code, output = _run(["top", "--side", "10", "--refresh", "0"])
        assert code == 2
        assert "--refresh" in output


class TestServeMetricsVerb:
    def test_push_files_and_exit_zero(self, tmp_path):
        import json

        from tests.promtext import parse

        prom = tmp_path / "metrics.prom"
        series = tmp_path / "series.json"
        code, output = _run(
            ["serve-metrics", "--side", "10", "--faults", "4", "--seed", "3",
             "--loss", "0.05", "--events", "4",
             "--push", str(prom), "--series-out", str(series)]
        )
        assert code == 0
        assert "serving http://" in output
        families = parse(prom.read_text())
        assert "repro_live_sample" in families
        payload = json.loads(series.read_text())
        assert "net.carried" in payload["series"]

    def test_fail_on_alerts_is_clean_on_benign_run(self, tmp_path):
        code, output = _run(
            ["serve-metrics", "--side", "10", "--faults", "4", "--seed", "3",
             "--loss", "0.05", "--events", "4", "--fail-on-alerts"]
        )
        assert code == 0
        assert "FAIL" not in output

    def test_linger_validation(self):
        code, output = _run(["serve-metrics", "--side", "10", "--linger", "-1"])
        assert code == 2
        assert "--linger" in output

    def test_grace_validation(self):
        code, output = _run(["serve-metrics", "--side", "10", "--grace", "-1"])
        assert code == 2
        assert "--grace" in output


class TestServeVerb:
    def test_ttl_run_serves_and_drains(self):
        code, output = _run(
            ["serve", "--side", "10", "--faults", "4", "--seed", "3",
             "--ttl", "0.5", "--events", "2", "--event-interval", "0.05"]
        )
        assert code == 0
        assert "serving http://" in output and "/query" in output
        assert "drained:" in output
        assert "generation 2" in output  # both chaos events landed

    def test_live_queries_over_http(self):
        import json
        import threading
        import urllib.request

        from repro.cli import main

        lines: list[str] = []
        banner = threading.Event()

        def out(line: str) -> None:
            lines.append(line)
            if "serving http://" in line:
                banner.set()

        thread = threading.Thread(
            target=main,
            args=(["serve", "--side", "10", "--faults", "4", "--seed", "3",
                   "--ttl", "3"], out),
        )
        thread.start()
        try:
            assert banner.wait(timeout=10), lines
            base = lines[0].split()[1].rsplit("/query", 1)[0]
            with urllib.request.urlopen(
                base + "/query?source=0,0&dest=9,9", timeout=5
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["status"] == "ok"
            assert payload["answer"]["generation"] == 0
            assert payload["answer"]["verdict"] in (
                "source-safe", "preferred-neighbor-safe", "axis-node-safe",
                "pivot-safe", "spare-neighbor-safe", "unsafe",
                "blocked-endpoint",
            )
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()

    @pytest.mark.parametrize("argv, flag", [
        (["serve", "--workers", "0"], "--workers"),
        (["serve", "--queue-limit", "0"], "--queue-limit"),
        (["serve", "--deadline-ms", "0"], "--deadline-ms"),
        (["serve", "--max-staleness", "-1"], "--max-staleness"),
        (["serve", "--ttl", "0"], "--ttl"),
        (["serve", "--notice", "-1"], "--notice"),
    ])
    def test_argument_validation(self, argv, flag):
        code, output = _run(argv)
        assert code == 2
        assert flag in output


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    """One small flight-recorded chaos run shared by the replay tests."""
    log = tmp_path_factory.mktemp("recording") / "run.jsonl"
    code, output = _run(
        ["chaos", "--side", "8", "--faults", "3", "--seed", "3",
         "--loss", "0.05", "--dup", "0.02", "--events", "4",
         "--record", str(log)]
    )
    assert code == 0, output
    assert "recorded" in output and "run.jsonl.idx" in output
    return log


class TestReplayVerb:
    def test_record_writes_log_and_index(self, recording):
        assert recording.exists()
        assert recording.with_name("run.jsonl.idx").exists()

    def test_replay_is_bit_identical(self, recording):
        code, output = _run(["replay", str(recording)])
        assert code == 0
        assert "REPLAY OK" in output and "streams identical" in output

    def test_time_travel_snapshot(self, recording):
        code, output = _run(["replay", str(recording), "--at", "5"])
        assert code == 0
        assert "t=5" in output
        assert "faults" in output

    def test_lineage_of_the_header(self, recording):
        code, output = _run(["replay", str(recording), "--lineage", "0"])
        assert code == 0
        assert "run_meta" in output

    def test_lineage_of_a_delivery_walks_to_its_send(self, recording):
        from repro.obs import read_recording

        delivery = next(
            e for e in read_recording(recording) if e.kind == "msg_deliver"
        )
        code, output = _run(["replay", str(recording), "--lineage", str(delivery.seq)])
        assert code == 0
        assert "msg_send" in output and "msg_deliver" in output

    def test_lineage_unknown_event(self, recording):
        code, output = _run(["replay", str(recording), "--lineage", "9999999"])
        assert code == 2
        assert "not in this recording" in output

    def test_print_with_kind_filter(self, recording):
        code, output = _run(
            ["replay", str(recording), "--print",
             "--kind", "chaos_crash", "--kind", "chaos_revive"]
        )
        assert code == 0
        body, tally = output.splitlines()[:-1], output.splitlines()[-1]
        assert body  # the 4-event schedule applied something
        assert all("chaos_crash" in line or "chaos_revive" in line for line in body)
        assert " of " in tally and "events" in tally

    def test_print_with_node_filter(self, recording):
        code, unfiltered = _run(["replay", str(recording), "--print"])
        assert code == 0
        code, filtered = _run(["replay", str(recording), "--print", "--node", "0,0"])
        assert code == 0
        assert 0 < len(filtered.splitlines()) < len(unfiltered.splitlines())

    def test_unknown_kind_rejected(self, recording):
        code, output = _run(["replay", str(recording), "--print", "--kind", "banana"])
        assert code == 2
        assert "unknown event kind" in output

    def test_missing_log(self, tmp_path):
        code, output = _run(["replay", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "does not exist" in output

    def test_bisect_against_itself(self, recording):
        code, output = _run(["replay", str(recording), "--bisect", str(recording)])
        assert code == 0
        assert "identical" in output

    def test_bisect_pinpoints_a_perturbed_copy(self, recording, tmp_path):
        from repro.obs import RecorderSink, TraceEvent, read_recording

        events = read_recording(recording)
        target = next(
            e for e in events if e.kind == "msg_deliver" and e.seq > len(events) // 2
        )
        tampered = TraceEvent(
            kind=target.kind,
            seq=target.seq,
            data={**dict(target.data), "msg": "tampered"},
            cause=target.cause,
        )
        other = tmp_path / "perturbed.jsonl"
        sink = RecorderSink(other)
        for event in events:
            sink.record(tampered if event.seq == target.seq else event)
        sink.close()
        code, output = _run(["replay", str(recording), "--bisect", str(other)])
        assert code == 1
        assert f"first divergence at event {target.seq}" in output
        assert "ancestry" in output and "index probes" in output


class TestTraceFilters:
    BASE = ["trace", "0,0", "7,7", "--faults", "3", "--seed", "1"]

    def test_kind_filter_narrows_the_log(self):
        code, unfiltered = _run(self.BASE)
        assert code == 0
        code, output = _run([*self.BASE, "--kind", "hop"])
        assert code == 0
        assert unfiltered.count("hop ") > 0
        assert output.count("hop ") == unfiltered.count("hop ")
        assert "leg:" in unfiltered and "leg:" not in output  # route_start hidden

    def test_node_filter_narrows_the_log(self):
        code, unfiltered = _run(self.BASE)
        code, output = _run([*self.BASE, "--node", "0,0", "--node", "1,0"])
        assert code == 0
        assert 0 < output.count("hop ") < unfiltered.count("hop ")

    def test_unknown_kind_rejected(self):
        code, output = _run([*self.BASE, "--kind", "banana"])
        assert code == 2
        assert "unknown event kind" in output


class TestProtocols:
    def test_cost_table(self):
        code, output = _run(["protocols", "--side", "16", "--faults", "10"])
        assert code == 0
        for name in ("block formation", "ESL formation", "pivot broadcast"):
            assert name in output


class TestFigures:
    def test_single_quick_figure_with_csv(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        # Shrink the quick preset further for test speed.
        from repro.experiments import ExperimentConfig

        tiny = ExperimentConfig.scaled(side=32, patterns_per_count=2, destinations_per_pattern=4)
        monkeypatch.setattr(ExperimentConfig, "quick", staticmethod(lambda: tiny))
        code, output = _run(["figures", "fig7", "--csv", str(tmp_path)])
        assert code == 0
        assert "fig7" in output
        assert (tmp_path / "fig7.csv").exists()

    def test_plot_flag(self, monkeypatch):
        from repro.experiments import ExperimentConfig

        tiny = ExperimentConfig.scaled(side=32, patterns_per_count=2, destinations_per_pattern=4)
        monkeypatch.setattr(ExperimentConfig, "quick", staticmethod(lambda: tiny))
        code, output = _run(["figures", "fig8", "--plot"])
        assert code == 0
        assert "o=" in output  # the ASCII plot legend

    def test_workers_flag_runs_the_condition_sweep(self, monkeypatch):
        from repro.experiments import ExperimentConfig

        tiny = ExperimentConfig.scaled(side=32, patterns_per_count=2, destinations_per_pattern=4)
        monkeypatch.setattr(ExperimentConfig, "quick", staticmethod(lambda: tiny))
        code, output = _run(["figures", "fig9", "--workers", "2"])
        assert code == 0
        assert "fig9" in output

    def test_workers_must_be_positive(self):
        code, output = _run(["figures", "fig9", "--workers", "0"])
        assert code == 2
        assert "--workers" in output


class TestMemoryAndSweep:
    def test_memory_table(self):
        code, output = _run(["memory", "--side", "16", "--faults", "10"])
        assert code == 0
        assert "routing table" in output
        assert "ESL + boundary tags" in output

    def test_sweep(self):
        code, output = _run(["sweep", "--sides", "24", "32", "--patterns", "2"])
        assert code == 0
        assert "size invariance" in output
        assert "safe_source" in output
