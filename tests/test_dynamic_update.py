"""Dynamic fault injection: incremental update equals from-scratch state."""

import numpy as np
import pytest

from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols.dynamic_update import DynamicMesh


def _assert_consistent(dynamic: DynamicMesh) -> None:
    """The live state equals the centralized recomputation."""
    expected_blocks = build_faulty_blocks(dynamic.mesh, dynamic.faults)
    assert np.array_equal(dynamic.unusable_grid(), expected_blocks.unusable)
    expected_levels = compute_safety_levels(dynamic.mesh, expected_blocks.unusable)
    live = dynamic.safety_levels()
    for coord in dynamic.mesh.nodes():
        if expected_blocks.unusable[coord]:
            continue
        assert live.esl(coord) == expected_levels.esl(coord), coord


class TestSingleInjections:
    def test_initial_state_clear(self):
        dynamic = DynamicMesh(Mesh2D(8, 8))
        assert not dynamic.unusable_grid().any()
        assert dynamic.safety_levels().esl((3, 3)) == (UNBOUNDED,) * 4

    def test_one_fault_updates_row_and_column(self):
        dynamic = DynamicMesh(Mesh2D(10, 10))
        report = dynamic.inject_fault((5, 5))
        _assert_consistent(dynamic)
        assert report.newly_disabled == 0
        # The ripple stays on the affected row and column.
        assert report.messages <= 2 * 10

    def test_duplicate_injection_rejected(self):
        dynamic = DynamicMesh(Mesh2D(8, 8))
        dynamic.inject_fault((2, 2))
        with pytest.raises(ValueError):
            dynamic.inject_fault((2, 2))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            DynamicMesh(Mesh2D(8, 8)).inject_fault((8, 0))


class TestDisablingCascades:
    def test_diagonal_pair_disables_corners(self):
        dynamic = DynamicMesh(Mesh2D(10, 10))
        dynamic.inject_fault((4, 4))
        report = dynamic.inject_fault((5, 5))
        _assert_consistent(dynamic)
        assert report.newly_disabled == 2  # (4,5) and (5,4)

    def test_staircase_cascade(self):
        dynamic = DynamicMesh(Mesh2D(12, 12))
        for fault in [(3, 3), (4, 4), (5, 5)]:
            dynamic.inject_fault(fault)
        _assert_consistent(dynamic)
        assert int(dynamic.unusable_grid().sum()) == 9  # full 3x3 square

    def test_injection_into_disabled_region(self):
        """A fault landing on an already-disabled node is a no-op for the
        block but must not corrupt the state."""
        dynamic = DynamicMesh(Mesh2D(10, 10))
        dynamic.inject_fault((4, 4))
        dynamic.inject_fault((5, 5))  # disables (4,5), (5,4)
        dynamic.inject_fault((4, 5))  # hits a disabled (still live) node
        _assert_consistent(dynamic)


class TestRandomSequences:
    @pytest.mark.parametrize("count", [10, 30])
    def test_matches_recompute_after_every_injection(self, rng, count):
        mesh = Mesh2D(16, 16)
        dynamic = DynamicMesh(mesh)
        faults = uniform_faults(mesh, count, rng)
        for fault in faults:
            if dynamic.unusable_grid()[fault] and fault not in dynamic.faults:
                # Landing on a disabled node: allowed, state must stay sane.
                pass
            dynamic.inject_fault(fault)
        _assert_consistent(dynamic)
        assert len(dynamic.reports) == count

    def test_update_locality(self, rng):
        """Incremental updates cost far less than re-forming from scratch.

        From-scratch ESL formation touches every affected row/column; an
        injection's ripple touches only the rows/columns of the new fault.
        """
        mesh = Mesh2D(24, 24)
        dynamic = DynamicMesh(mesh)
        faults = uniform_faults(mesh, 20, rng)
        for fault in faults:
            dynamic.inject_fault(fault)
        total_incremental = dynamic.total_messages
        per_injection = max(r.messages for r in dynamic.reports)
        # No single update floods the mesh.
        assert per_injection <= 4 * 24
        # And the running total stays in the same ballpark as one full
        # formation pass (each injection only redoes its own row/column).
        from repro.simulator.protocols import run_safety_propagation

        blocks = build_faulty_blocks(mesh, faults)
        from_scratch = run_safety_propagation(mesh, blocks.unusable).stats.messages
        assert total_incremental <= 4 * (from_scratch + 4 * 24)


class TestIncrementalMaintenance:
    def test_incremental_reference_matches_full_rebuild(self, rng):
        """Under maintenance="incremental" the centralized reference is
        delta-maintained yet stays bit-identical to a from-scratch build
        through injections and revivals."""
        mesh = Mesh2D(12, 12)
        dynamic = DynamicMesh(mesh, maintenance="incremental")
        faults = uniform_faults(mesh, 10, rng)
        for fault in faults:
            report = dynamic.inject_fault(fault)
            assert report.affected_cells is not None
            assert report.affected_cells >= 1
            assert report.affected_fraction == pytest.approx(
                report.affected_cells / mesh.size
            )
        assert dynamic.reports[-1].generation == len(faults)
        for victim in faults[::3]:
            dynamic.revive_node(victim)

        expected = build_faulty_blocks(mesh, dynamic.faults)
        got = dynamic.reference_blocks()
        assert np.array_equal(got.unusable, expected.unusable)
        assert got.blocks == expected.blocks
        expected_levels = compute_safety_levels(mesh, expected.unusable)
        got_levels = dynamic.reference_levels()
        for grid in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(got_levels, grid), getattr(expected_levels, grid)
            )
        _assert_consistent(dynamic)

    def test_full_mode_reports_carry_no_affected_fields(self):
        dynamic = DynamicMesh(Mesh2D(8, 8))
        report = dynamic.inject_fault((3, 3))
        assert report.affected_cells is None
        assert report.affected_fraction is None
        assert report.generation is None
        assert dynamic.fault_engine is None
        # The full-rebuild reference still serves ground truth.
        expected = build_faulty_blocks(dynamic.mesh, dynamic.faults)
        assert np.array_equal(
            dynamic.reference_blocks().unusable, expected.unusable
        )

    def test_rejects_unknown_maintenance(self):
        with pytest.raises(ValueError, match="maintenance"):
            DynamicMesh(Mesh2D(8, 8), maintenance="lazy")
