"""Unit tests for Extension 3's pivot-selection schemes."""

import numpy as np
import pytest

from repro.core.pivots import (
    latin_pivots,
    pivot_count_for_levels,
    random_pivots,
    recursive_center_pivots,
)
from repro.mesh.geometry import Rect


class TestPivotCounts:
    def test_formula(self):
        assert pivot_count_for_levels(1) == 1
        assert pivot_count_for_levels(2) == 5
        assert pivot_count_for_levels(3) == 21  # the paper's strategy 2 count

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            pivot_count_for_levels(0)


class TestRecursiveCenters:
    def test_level_one_is_region_center(self):
        region = Rect(0, 99, 0, 99)
        assert recursive_center_pivots(region, 1) == [(49, 49)]

    def test_exact_counts_on_large_region(self):
        region = Rect(0, 99, 0, 99)
        for level in (1, 2, 3):
            pivots = recursive_center_pivots(region, level)
            assert len(pivots) == pivot_count_for_levels(level)

    def test_all_inside_region(self):
        region = Rect(10, 60, 20, 90)
        for pivot in recursive_center_pivots(region, 3):
            assert region.contains(pivot)

    def test_coarse_pivots_first(self):
        region = Rect(0, 99, 0, 99)
        pivots = recursive_center_pivots(region, 2)
        assert pivots[0] == (49, 49)
        assert len(pivots[1:]) == 4

    def test_deduplicates_on_tiny_region(self):
        region = Rect(0, 1, 0, 1)
        pivots = recursive_center_pivots(region, 3)
        assert len(pivots) == len(set(pivots))
        for pivot in pivots:
            assert region.contains(pivot)

    def test_spread_covers_quarters(self):
        region = Rect(0, 99, 0, 99)
        pivots = recursive_center_pivots(region, 2)
        quadrant_hits = {(px > 49, py > 49) for px, py in pivots[1:]}
        assert len(quadrant_hits) == 4


class TestRandomPivots:
    def test_counts_and_bounds(self, rng):
        region = Rect(0, 99, 0, 99)
        pivots = random_pivots(region, 3, rng)
        assert len(pivots) <= pivot_count_for_levels(3)
        assert len(pivots) >= 15  # collisions are rare on a 100x100 region
        for pivot in pivots:
            assert region.contains(pivot)

    def test_reproducible_from_seed(self):
        region = Rect(0, 49, 0, 49)
        a = random_pivots(region, 2, np.random.default_rng(42))
        b = random_pivots(region, 2, np.random.default_rng(42))
        assert a == b

    def test_invalid_level(self, rng):
        with pytest.raises(ValueError):
            random_pivots(Rect(0, 9, 0, 9), 0, rng)


class TestLatinPivots:
    def test_row_column_distinct(self, rng):
        region = Rect(0, 49, 0, 49)
        pivots = latin_pivots(region, 8, rng)
        xs = [p[0] for p in pivots]
        ys = [p[1] for p in pivots]
        assert len(set(xs)) == 8 and len(set(ys)) == 8

    def test_even_spread(self, rng):
        region = Rect(0, 79, 0, 79)
        pivots = latin_pivots(region, 8, rng)
        # One pivot per column band of width 10.
        bands = sorted(p[0] // 10 for p in pivots)
        assert bands == list(range(8))

    def test_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            latin_pivots(Rect(0, 4, 0, 4), 6, rng)

    def test_at_least_one(self, rng):
        with pytest.raises(ValueError):
            latin_pivots(Rect(0, 4, 0, 4), 0, rng)
