"""Second property-test battery: cross-module invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.boundaries import BoundaryMap
from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.hypercube import Hypercube, compute_hypercube_safety
from repro.mesh.geometry import Rect, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.detour import DetourRouter
from repro.routing.router import RoutingError

SIDE = 14
MESH = Mesh2D(SIDE, SIDE)

coords = st.tuples(st.integers(0, SIDE - 1), st.integers(0, SIDE - 1))
fault_sets = st.lists(coords, min_size=0, max_size=18, unique=True)

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_decision_hierarchy(faults, source, dest):
    """Definition 3 implies Extension 1 implies soundness; Extension 2 with
    full sampling and Extension 3 with a usable pivot also subsume it."""
    blocks = build_faulty_blocks(MESH, faults)
    if blocks.is_unusable(source) or blocks.is_unusable(dest):
        return
    levels = compute_safety_levels(MESH, blocks.unusable)
    safe = is_safe(levels, source, dest)
    ext1 = extension1_decision(MESH, levels, blocks.unusable, source, dest)
    ext2 = extension2_decision(MESH, levels, source, dest, 1)
    if safe:
        assert ext1.kind is DecisionKind.SOURCE_SAFE
        assert ext2.kind is DecisionKind.SOURCE_SAFE
    for decision in (ext1, ext2):
        if decision.ensures_minimal:
            assert minimal_path_exists(blocks.unusable, source, dest)


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_wu_route_stays_in_rectangle(faults, source, dest):
    blocks = build_faulty_blocks(MESH, faults)
    if blocks.is_unusable(source) or blocks.is_unusable(dest):
        return
    levels = compute_safety_levels(MESH, blocks.unusable)
    if not is_safe(levels, source, dest):
        return
    path = WuRouter(MESH, blocks).route(source, dest)
    xlo, xhi = sorted((source[0], dest[0]))
    ylo, yhi = sorted((source[1], dest[1]))
    for x, y in path:
        assert xlo <= x <= xhi and ylo <= y <= yhi


@COMMON
@given(faults=fault_sets)
def test_boundary_annotations_only_on_free_nodes(faults):
    blocks = build_faulty_blocks(MESH, faults)
    canonical = BoundaryMap.for_blocks(blocks).canonical(False, False)
    for coord, tags in canonical.annotations.items():
        assert not blocks.unusable[coord]
        assert tags  # no empty tag lists stored
        for tag in tags:
            assert 0 <= tag.block_index < len(blocks.rects())


@COMMON
@given(faults=fault_sets)
def test_boundary_toward_points_to_annotated_or_free(faults):
    """Following a straight-section `toward` pointer lands on another node
    of the same block's polyline (or the exit corner)."""
    blocks = build_faulty_blocks(MESH, faults)
    canonical = BoundaryMap.for_blocks(blocks).canonical(False, False)
    for coord, tags in canonical.annotations.items():
        for tag in tags:
            if tag.toward is None:
                continue
            nxt = tag.toward.step(coord)
            if not MESH.in_bounds(nxt):
                continue  # clipped exit at the mesh edge
            next_tags = {
                (t.block_index, t.line) for t in canonical.tags_at(nxt)
            }
            assert (tag.block_index, tag.line) in next_tags


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_detour_parity_and_delivery(faults, source, dest):
    blocks = build_faulty_blocks(MESH, faults)
    if blocks.is_unusable(source) or blocks.is_unusable(dest):
        return
    router = DetourRouter(MESH, blocks)
    try:
        path = router.route(source, dest)
    except RoutingError:
        return  # edge-touching block: documented limitation
    assert path.dest == dest
    assert path.avoids(blocks.unusable)
    assert (path.hops - manhattan_distance(source, dest)) % 2 == 0


@COMMON
@given(
    dimensions=st.integers(2, 5),
    data=st.data(),
)
def test_hypercube_levels_in_range(dimensions, data):
    cube = Hypercube(dimensions)
    fault_count = data.draw(st.integers(0, cube.size // 3))
    faults = data.draw(
        st.lists(
            st.integers(0, cube.size - 1),
            min_size=fault_count,
            max_size=fault_count,
            unique=True,
        )
    )
    levels = compute_hypercube_safety(cube, faults)
    for node in cube.nodes():
        if node in set(faults):
            assert levels[node] == 0
        else:
            assert 1 <= levels[node] <= dimensions


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_extension3_via_is_actually_usable(faults, source, dest):
    """When Extension 3 chains through a pivot, both legs hold."""
    blocks = build_faulty_blocks(MESH, faults)
    if blocks.is_unusable(source) or blocks.is_unusable(dest):
        return
    levels = compute_safety_levels(MESH, blocks.unusable)
    pivots = [(x, y) for x in (3, 7, 10) for y in (3, 7, 10)]
    decision = extension3_decision(MESH, levels, blocks.unusable, source, dest, pivots)
    if decision.kind is DecisionKind.PIVOT_SAFE:
        pivot = decision.via
        assert pivot is not None and not blocks.unusable[pivot]
        assert is_safe(levels, source, pivot)
        assert is_safe(levels, pivot, dest)
