"""A strict, pure-python Prometheus text-exposition (0.0.4) parser.

Test infrastructure, not product code: the test suite round-trips
:func:`repro.obs.prometheus.render_prometheus` output through this
parser, and the CI scrape-smoke job validates a live ``/metrics`` body
with ``python -m tests.promtext FILE``.  Strictness is the point -- the
parser rejects everything the exposition format forbids that a sloppy
renderer might emit:

- samples for a metric appearing before its ``# TYPE`` header,
- a second ``# TYPE`` / ``# HELP`` for the same metric name,
- duplicate series (same name and label set),
- malformed label escaping (raw newlines, stray backslashes),
- a body that does not end with a newline.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


class PromParseError(ValueError):
    """The exposition body violates the 0.0.4 text format."""


@dataclass(frozen=True)
class Sample:
    """One series sample: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass
class Family:
    """One metric family: the ``# TYPE`` header plus its samples."""

    name: str
    type: str
    help: str | None = None
    samples: list[Sample] = field(default_factory=list)


#: Suffixes that attach a sample to its base family for summary types.
_SUMMARY_SUFFIXES = ("_sum", "_count")


def _family_name(sample_name: str, families: dict[str, Family]) -> str:
    """The family a sample belongs to (summaries own _sum/_count)."""
    if sample_name in families:
        return sample_name
    for suffix in _SUMMARY_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].type == "summary":
                return base
    return sample_name


def _unescape_label_value(raw: str, line_no: int) -> str:
    """Undo ``\\\\``, ``\\"`` and ``\\n`` escaping inside a quoted value."""
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise PromParseError(f"line {line_no}: dangling backslash in label value")
            nxt = raw[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise PromParseError(
                    f"line {line_no}: invalid escape '\\{nxt}' in label value"
                )
            i += 2
            continue
        if ch == '"':
            raise PromParseError(f"line {line_no}: unescaped quote in label value")
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(raw: str, line_no: int) -> tuple[tuple[str, str], ...]:
    """Parse the ``key="value",...`` body between braces."""
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0:
            raise PromParseError(f"line {line_no}: label without '='")
        key = raw[i:eq].strip()
        if not key.replace("_", "a").isalnum():
            raise PromParseError(f"line {line_no}: invalid label name {key!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise PromParseError(f"line {line_no}: label value must be quoted")
        # Scan for the closing unescaped quote.
        j = eq + 2
        while j < len(raw):
            if raw[j] == "\\":
                j += 2
                continue
            if raw[j] == '"':
                break
            j += 1
        else:
            raise PromParseError(f"line {line_no}: unterminated label value")
        value = _unescape_label_value(raw[eq + 2 : j], line_no)
        labels.append((key, value))
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                raise PromParseError(f"line {line_no}: expected ',' between labels")
            i += 1
    return tuple(labels)


def _parse_sample_line(line: str, line_no: int) -> Sample:
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise PromParseError(f"line {line_no}: unbalanced braces")
        name = line[:brace]
        labels = _parse_labels(line[brace + 1 : close], line_no)
        rest = line[close + 1 :].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise PromParseError(f"line {line_no}: expected 'name value'")
        name, rest = parts[0], parts[1].strip()
        labels = ()
    if not name or not name.replace("_", "a").replace(":", "a").isalnum():
        raise PromParseError(f"line {line_no}: invalid metric name {name!r}")
    # A timestamp after the value is legal in 0.0.4; we don't emit them,
    # so reject to keep the round-trip strict.
    try:
        value = float(rest)
    except ValueError:
        raise PromParseError(f"line {line_no}: invalid sample value {rest!r}") from None
    return Sample(name, labels, value)


def parse(text: str) -> dict[str, Family]:
    """Parse one exposition body into families, strictly.

    Returns families keyed by metric name, each with its samples in
    input order.  Raises :class:`PromParseError` on any violation.
    """
    if text and not text.endswith("\n"):
        raise PromParseError("exposition body must end with a newline")
    families: dict[str, Family] = {}
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(None, 1)
            if not parts:
                raise PromParseError(f"line {line_no}: HELP without a metric name")
            name = parts[0]
            help_text = parts[1] if len(parts) > 1 else ""
            family = families.get(name)
            if family is not None:
                if family.help is not None:
                    raise PromParseError(f"line {line_no}: duplicate HELP for {name}")
                family.help = help_text
            else:
                families[name] = Family(name, type="", help=help_text)
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise PromParseError(f"line {line_no}: malformed TYPE line")
            name, type_name = parts
            if type_name not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise PromParseError(f"line {line_no}: unknown type {type_name!r}")
            family = families.get(name)
            if family is not None:
                if family.type:
                    raise PromParseError(f"line {line_no}: duplicate TYPE for {name}")
                if family.samples:
                    raise PromParseError(
                        f"line {line_no}: TYPE for {name} after its samples"
                    )
                family.type = type_name
            else:
                families[name] = Family(name, type=type_name)
            continue
        if line.startswith("#"):
            continue  # free-form comment
        sample = _parse_sample_line(line, line_no)
        owner = _family_name(sample.name, families)
        family = families.get(owner)
        if family is None or not family.type:
            raise PromParseError(
                f"line {line_no}: sample {sample.name} before its # TYPE header"
            )
        key = (sample.name, sample.labels)
        if key in seen_series:
            raise PromParseError(
                f"line {line_no}: duplicate series {sample.name} {dict(sample.labels)}"
            )
        seen_series.add(key)
        family.samples.append(sample)
    for family in families.values():
        if not family.type:
            raise PromParseError(f"HELP without TYPE for {family.name}")
    return families


def main(argv: list[str] | None = None) -> int:
    """``python -m tests.promtext FILE`` -- validate an exposition body."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m tests.promtext FILE", file=sys.stderr)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as handle:
            families = parse(handle.read())
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except PromParseError as error:
        print(f"invalid exposition: {error}", file=sys.stderr)
        return 1
    samples = sum(len(f.samples) for f in families.values())
    print(f"ok: {len(families)} families, {samples} samples")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
