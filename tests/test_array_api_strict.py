"""The strict array-API wrapper, and the kernel suite running under it.

Two halves.  The first checks the wrapper itself: :class:`StrictArray`
exposes only the standard surface and *rejects* numpy-only idioms
(integer fancy indexing, ufunc/array method access, arithmetic with raw
ndarrays, implicit ``__array__`` conversion), and
:func:`resolve_backend` maps CLI names to namespaces with clear errors.

The second runs every cross-pattern kernel end to end on strict arrays
and compares against the numpy backend -- the proof that no numpy-only
call leaks into :mod:`repro.core.batched_patterns`' portable paths.  (The
numpy backend itself takes ``ufunc.accumulate`` fast paths; this suite is
what keeps the generic Hillis-Steele paths honest.)
"""

import numpy as np
import pytest

from repro.core.array_api import (
    BACKENDS,
    StrictArray,
    array_namespace,
    resolve_backend,
    strict_namespace,
    to_numpy,
)
from repro.core.batched_patterns import (
    batch_disable_fixpoint,
    batch_pattern_extension1,
    batch_pattern_extension2,
    batch_pattern_extension3,
    batch_pattern_is_safe,
    batch_pattern_path_exists,
    batch_reachability_map,
    batch_safety_levels,
)

XP = strict_namespace()


def _strict(array: np.ndarray) -> StrictArray:
    return XP.asarray(array)


# ----------------------------------------------------------------------
# Wrapper surface
# ----------------------------------------------------------------------


class TestNamespaceResolution:
    def test_numpy_is_the_default(self):
        assert array_namespace(np.zeros(3)) is np
        assert array_namespace(1, 2.5) is np
        assert array_namespace() is np

    def test_strict_arrays_carry_their_namespace(self):
        assert array_namespace(_strict(np.zeros(3))) is XP

    def test_mixed_namespaces_rejected(self):
        with pytest.raises(TypeError, match="mixed"):
            array_namespace(np.zeros(3), _strict(np.zeros(3)))

    def test_resolve_backend_names(self):
        assert resolve_backend("numpy") is np
        assert resolve_backend("strict") is XP
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_missing_optional_backends_fail_clearly(self, name):
        import importlib.util

        if importlib.util.find_spec(name) is not None:
            pytest.skip(f"{name} is installed here")
        with pytest.raises(RuntimeError, match=name):
            resolve_backend(name)

    def test_backends_constant_matches_cli_choices(self):
        assert BACKENDS == ("numpy", "strict", "cupy", "torch")


class TestStrictArrayRejections:
    def test_integer_fancy_indexing_rejected(self):
        a = _strict(np.arange(10))
        idx = XP.asarray(np.array([1, 2]))
        with pytest.raises(IndexError, match="take"):
            a[idx]

    def test_boolean_mask_is_allowed_but_only_alone(self):
        a = _strict(np.arange(10))
        mask = a > 5
        assert to_numpy(a[mask]).tolist() == [6, 7, 8, 9]
        b = _strict(np.zeros((3, 3)))
        with pytest.raises(IndexError, match="sole index"):
            b[XP.asarray(np.ones(3, dtype=bool)), 0]

    def test_arithmetic_with_raw_ndarray_rejected(self):
        a = _strict(np.arange(3))
        with pytest.raises(TypeError, match="strict arrays"):
            a + np.arange(3)
        with pytest.raises(TypeError, match="strict arrays"):
            a & np.ones(3, dtype=bool)

    def test_numpy_methods_absent(self):
        a = _strict(np.arange(3))
        with pytest.raises(AttributeError, match="standard"):
            a.sum()
        with pytest.raises(AttributeError, match="standard"):
            a.reshape(3, 1)

    def test_no_implicit_array_conversion(self):
        a = _strict(np.arange(3))
        with pytest.raises(AttributeError):
            a.__array__

    def test_nonstandard_namespace_functions_absent(self):
        with pytest.raises(AttributeError):
            XP.vstack
        with pytest.raises(AttributeError):
            XP.cumsum  # the standard name is cumulative_sum

    def test_scalar_operands_and_operators_work(self):
        a = _strict(np.arange(4, dtype=np.int64))
        b = (a * 2 + 1) % 3
        assert to_numpy(b).tolist() == [1, 0, 2, 1]
        assert bool(XP.any(a > 2))
        assert int(XP.sum(a)) == 6

    def test_standard_attributes(self):
        a = _strict(np.zeros((2, 3)))
        assert a.shape == (2, 3) and a.ndim == 2 and a.size == 6
        assert a.device == "cpu"
        assert a.T.shape == (3, 2) and a.mT.shape == (3, 2)
        assert len(a) == 2


# ----------------------------------------------------------------------
# Kernels under the strict namespace
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def case():
    """A seeded random (faulty, blocked, levels, source, dests) case, with
    both numpy and strict handles to the same data."""
    rng = np.random.default_rng(21)
    batch, n, m = 12, 18, 18
    faulty = rng.random((batch, n, m)) < 0.05
    source = (n // 2, m // 2)
    faulty[:, source[0], source[1]] = False
    blocked_np = to_numpy(batch_disable_fixpoint(faulty))
    # keep the source usable so condition semantics match the protocol
    blocked_np[:, source[0], source[1]] = False
    dests = rng.integers(0, n, size=(batch, 16, 2)).astype(np.int64)
    return faulty, blocked_np, source, dests


def test_formation_strict_matches_numpy(case):
    faulty, _, _, _ = case
    strict_out = batch_disable_fixpoint(_strict(faulty))
    assert isinstance(strict_out, StrictArray)
    np.testing.assert_array_equal(
        to_numpy(strict_out), to_numpy(batch_disable_fixpoint(faulty))
    )


def test_safety_levels_strict_matches_numpy(case):
    _, blocked, _, _ = case
    strict_levels = batch_safety_levels(_strict(blocked))
    numpy_levels = batch_safety_levels(blocked)
    for field in ("east", "south", "west", "north"):
        got = getattr(strict_levels, field)
        assert isinstance(got, StrictArray)
        np.testing.assert_array_equal(
            to_numpy(got), getattr(numpy_levels, field)
        )


def test_condition_kernels_strict_match_numpy(case):
    _, blocked, source, dests = case
    numpy_levels = batch_safety_levels(blocked)
    strict_levels = batch_safety_levels(_strict(blocked))
    strict_blocked = _strict(blocked)
    strict_dests = _strict(dests)
    pivots = np.array(
        [(source[0] + 2, source[1] + 2), (source[0] + 5, source[1] + 1)],
        dtype=np.int64,
    )

    pairs = [
        (
            batch_pattern_is_safe(numpy_levels, source, dests),
            batch_pattern_is_safe(strict_levels, source, strict_dests),
        ),
        (
            batch_pattern_extension1(blocked, numpy_levels, source, dests),
            batch_pattern_extension1(
                strict_blocked, strict_levels, source, strict_dests
            ),
        ),
        (
            batch_pattern_extension2(
                numpy_levels, source, dests, 3, blocked.shape[-2:]
            ),
            batch_pattern_extension2(
                strict_levels, source, strict_dests, 3, blocked.shape[-2:]
            ),
        ),
        (
            batch_pattern_extension3(
                blocked, numpy_levels, source, dests, pivots
            ),
            batch_pattern_extension3(
                strict_blocked, strict_levels, source, strict_dests,
                _strict(pivots),
            ),
        ),
        (
            batch_pattern_path_exists(blocked, source, dests),
            batch_pattern_path_exists(strict_blocked, source, strict_dests),
        ),
    ]
    for numpy_out, strict_out in pairs:
        assert isinstance(strict_out, StrictArray)
        np.testing.assert_array_equal(to_numpy(strict_out), to_numpy(numpy_out))


@pytest.mark.parametrize("flip_x", [False, True])
@pytest.mark.parametrize("flip_y", [False, True])
def test_reachability_strict_matches_numpy(case, flip_x, flip_y):
    _, blocked, source, _ = case
    numpy_map = batch_reachability_map(blocked, source, flip_x, flip_y)
    strict_map = batch_reachability_map(_strict(blocked), source, flip_x, flip_y)
    np.testing.assert_array_equal(to_numpy(strict_map), to_numpy(numpy_map))
