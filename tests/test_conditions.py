"""Unit tests for Definition 3's safe condition and decision records.

The key soundness property -- "safe implies a minimal path exists" (Theorem
1) -- is tested against the exact DP oracle on randomized fault patterns in
all four quadrants.
"""

import pytest

from repro.core.conditions import (
    Decision,
    DecisionKind,
    is_safe,
    neighbor_classification,
    safe_source_decision,
)
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D


def _setup(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return compute_safety_levels(mesh, blocks.unusable), blocks


class TestDefinition3:
    def test_clear_axes_are_safe(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(5, 5)])
        # Block at (5,5); from (0,0) the axes are clear, so any quadrant-I
        # destination with clear axis sections is safe.
        assert is_safe(levels, (0, 0), (11, 11))

    def test_block_on_x_axis_bounds_safety(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(5, 0)])
        assert is_safe(levels, (0, 0), (4, 11))  # xd = 4 <= E = 4
        assert not is_safe(levels, (0, 0), (5, 11))
        assert not is_safe(levels, (0, 0), (6, 11))

    def test_block_on_y_axis_bounds_safety(self):
        mesh = Mesh2D(12, 12)
        levels, _ = _setup(mesh, [(0, 7)])
        assert is_safe(levels, (0, 0), (11, 6))
        assert not is_safe(levels, (0, 0), (11, 7))

    def test_safe_in_every_quadrant(self):
        mesh = Mesh2D(13, 13)
        levels, _ = _setup(mesh, [(6, 6)])
        center = (6, 0)
        # From (6,0): the block is straight North at distance 5.
        assert is_safe(levels, center, (12, 5))
        assert not is_safe(levels, center, (12, 6))
        # Westward destination uses the W level.
        assert is_safe(levels, center, (0, 5))

    def test_degenerate_destinations(self):
        mesh = Mesh2D(10, 10)
        levels, _ = _setup(mesh, [(5, 5)])
        assert is_safe(levels, (2, 2), (2, 2))  # self
        assert is_safe(levels, (0, 0), (9, 0))  # straight East, clear row
        levels2, _ = _setup(mesh, [(4, 0)])
        assert not is_safe(levels2, (0, 0), (9, 0))  # blocked row

    def test_decision_record(self):
        mesh = Mesh2D(10, 10)
        levels, _ = _setup(mesh, [(4, 0)])
        safe = safe_source_decision(levels, (0, 0), (3, 5))
        assert safe.kind is DecisionKind.SOURCE_SAFE
        assert safe.ensures_minimal and safe.ensures_sub_minimal
        assert safe.expected_length_overhead == 0
        unsafe = safe_source_decision(levels, (0, 0), (5, 5))
        assert unsafe.kind is DecisionKind.UNSAFE
        assert not unsafe.ensures_minimal and not unsafe.ensures_sub_minimal


class TestTheorem1Soundness:
    """Definition 3 safe => the DP oracle confirms a minimal path exists."""

    @pytest.mark.parametrize("num_faults", [8, 25, 60])
    def test_random_patterns_all_quadrants(self, rng, num_faults):
        mesh = Mesh2D(30, 30)
        for _ in range(6):
            faults = uniform_faults(mesh, num_faults, rng)
            levels, blocks = _setup(mesh, faults)
            checked = 0
            for _ in range(200):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                if is_safe(levels, source, dest):
                    checked += 1
                    assert minimal_path_exists(blocks.unusable, source, dest), (
                        f"safe pair {source} -> {dest} has no minimal path; "
                        f"faults={faults}"
                    )
            assert checked > 0  # the test exercised the property


class TestNeighborClassification:
    def test_interior(self):
        mesh = Mesh2D(10, 10)
        preferred, spare = neighbor_classification(mesh, (4, 4), (8, 8))
        assert set(preferred) == {(5, 4), (4, 5)}
        assert set(spare) == {(3, 4), (4, 3)}

    def test_decision_fields(self):
        decision = Decision(DecisionKind.SPARE_NEIGHBOR_SAFE, (0, 0), (5, 5), via=(0, 1))
        assert not decision.ensures_minimal
        assert decision.ensures_sub_minimal
        assert decision.expected_length_overhead == 2
