"""Unit tests for the discrete-event engine, channels, and network."""

import pytest

from repro.mesh.geometry import Direction
from repro.mesh.topology import Mesh2D
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork
from repro.simulator.process import NodeProcess


class TestEngine:
    def test_time_ordering(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        assert engine.run() == 3
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_fifo_among_equal_times(self):
        engine = Engine()
        order = []
        for tag in "abc":
            engine.schedule(1.0, order.append, tag)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(0.0, chain, 0)
        engine.run()
        assert seen == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_until_bound(self):
        engine = Engine()
        hits = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, hits.append, t)
        engine.run(until=2.0)
        assert hits == [1.0, 2.0]
        assert engine.pending == 1

    def test_event_budget(self):
        engine = Engine()

        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            engine.run(max_events=100)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_step_empty(self):
        assert Engine().step() is False


class _Echo(NodeProcess):
    """Counts deliveries; replies once to the first message."""

    def __init__(self, coord, network):
        super().__init__(coord, network)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)
        if len(self.received) == 1 and message.kind == "ping":
            assert message.arrival_direction is not None
            self.send(message.arrival_direction, "pong")


class TestNetwork:
    def test_message_round_trip(self):
        mesh = Mesh2D(3, 3)
        network = MeshNetwork(mesh, Engine(), _Echo)
        network.send_from((0, 0), Direction.EAST, "ping", None)
        stats = network.run()
        receiver = network.process_at((1, 0))
        sender = network.process_at((0, 0))
        assert [m.kind for m in receiver.received] == ["ping"]
        assert [m.kind for m in sender.received] == ["pong"]
        # Arrival direction is receiver-relative.
        assert receiver.received[0].arrival_direction is Direction.WEST
        assert sender.received[0].arrival_direction is Direction.EAST
        assert stats.messages == 2
        assert stats.converged_at == 2.0

    def test_edge_send_is_noop(self):
        mesh = Mesh2D(2, 2)
        network = MeshNetwork(mesh, Engine(), _Echo)
        assert network.send_from((0, 0), Direction.WEST, "ping", None) is False
        assert network.run().messages == 0

    def test_faulty_nodes_silent(self):
        mesh = Mesh2D(3, 1)
        network = MeshNetwork(mesh, Engine(), _Echo, faulty=[(1, 0)])
        assert (1, 0) not in network.nodes
        network.send_from((0, 0), Direction.EAST, "ping", None)
        stats = network.run()
        assert stats.messages == 0 and stats.dropped == 1

    def test_latency_scales_convergence_time(self):
        mesh = Mesh2D(3, 3)
        network = MeshNetwork(mesh, Engine(), _Echo, latency=5.0)
        network.send_from((0, 0), Direction.EAST, "ping", None)
        stats = network.run()
        assert stats.converged_at == 10.0

    def test_broadcast_counts_edges(self):
        mesh = Mesh2D(3, 3)
        network = MeshNetwork(mesh, Engine(), _Echo)
        center = network.process_at((1, 1))
        assert center.broadcast("ping") == 4
        corner = network.process_at((0, 0))
        assert corner.broadcast("ping") == 2
        assert set(corner.neighbor_directions()) == {Direction.EAST, Direction.NORTH}
