"""Tests for the packet-level traffic simulator."""

import numpy as np
import pytest

from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.detour import DetourRouter
from repro.routing.oracle import MonotoneOracleRouter
from repro.routing.router import GreedyAdaptiveRouter
from repro.simulator.traffic import (
    PathPolicy,
    run_workload,
    uniform_traffic,
)


def _clean_mesh(side=12):
    mesh = Mesh2D(side, side)
    blocks = build_faulty_blocks(mesh, [])
    return mesh, blocks


class TestSinglePacket:
    def test_uncontended_latency_equals_distance(self):
        mesh, blocks = _clean_mesh()
        policy = GreedyAdaptiveRouter(mesh, blocks.unusable)
        stats = run_workload(mesh, policy, [((0, 0), (5, 3), 0)])
        assert stats.delivered == 1
        assert stats.latencies == [8]
        assert stats.average_stretch == 1.0
        assert stats.stall_cycles == 0

    def test_injection_time_respected(self):
        mesh, blocks = _clean_mesh()
        policy = GreedyAdaptiveRouter(mesh, blocks.unusable)
        stats = run_workload(mesh, policy, [((0, 0), (3, 0), 7)])
        assert stats.delivered == 1
        assert stats.latencies == [3]  # latency measured from injection
        assert stats.total_cycles == 10

    def test_path_policy_follows_precomputed_route(self):
        mesh, blocks = _clean_mesh()
        policy = PathPolicy(route=DetourRouter(mesh, blocks).route)
        stats = run_workload(mesh, policy, [((0, 0), (4, 4), 0)])
        assert stats.delivered == 1
        assert stats.latencies == [8]


class TestContention:
    def test_shared_link_serializes(self):
        """Two packets fighting for the same link: one stalls one cycle."""
        mesh, blocks = _clean_mesh()
        policy = GreedyAdaptiveRouter(
            mesh, blocks.unusable, tie_breaker=lambda c, d, cands: cands[0]
        )
        # Both packets start adjacent to (1, 0) heading East along row 0.
        traffic = [((0, 0), (5, 0), 0), ((0, 0), (6, 0), 0)]
        stats = run_workload(mesh, policy, traffic)
        assert stats.delivered == 2
        assert stats.stall_cycles >= 1
        assert max(stats.latencies) > min(stats.latencies)

    def test_age_priority_prevents_starvation(self):
        mesh, blocks = _clean_mesh()
        policy = GreedyAdaptiveRouter(
            mesh, blocks.unusable, tie_breaker=lambda c, d, cands: cands[0]
        )
        # A stream of later packets cannot starve the first one.
        traffic = [((0, 0), (8, 0), t) for t in range(6)]
        stats = run_workload(mesh, policy, traffic)
        assert stats.delivered == 6
        assert stats.latencies[0] == 8  # the oldest packet never stalls


class TestFaultyWorkloads:
    def test_greedy_drops_where_wu_delivers(self, rng):
        """On safe pairs Wu's protocol delivers everything; greedy may not."""
        mesh = Mesh2D(24, 24)
        faults = uniform_faults(mesh, 45, rng)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        traffic = [
            (s, d, t)
            for (s, d, t) in uniform_traffic(mesh, blocks.unusable, 150, rng, 20)
            if is_safe(levels, s, d)
        ]
        assert traffic
        wu_stats = run_workload(mesh, WuRouter(mesh, blocks), traffic)
        greedy_stats = run_workload(
            mesh, GreedyAdaptiveRouter(mesh, blocks.unusable), traffic
        )
        assert wu_stats.delivered == len(traffic)
        assert wu_stats.average_stretch == 1.0
        assert greedy_stats.delivered <= wu_stats.delivered

    def test_detour_delivers_nonminimally(self, rng):
        mesh = Mesh2D(24, 24)
        # Interior block the traffic must round.
        faults = [(11, 11), (12, 12)]
        blocks = build_faulty_blocks(mesh, faults)
        policy = PathPolicy(route=DetourRouter(mesh, blocks).route)
        traffic = uniform_traffic(mesh, blocks.unusable, 80, rng, 10)
        stats = run_workload(mesh, policy, traffic)
        assert stats.delivered == len(traffic)
        assert stats.average_stretch >= 1.0

    def test_oracle_policy_matches_distance(self, rng):
        mesh = Mesh2D(20, 20)
        faults = uniform_faults(mesh, 20, rng)
        blocks = build_faulty_blocks(mesh, faults)
        oracle = MonotoneOracleRouter(mesh, blocks.unusable)
        policy = PathPolicy(route=oracle.route)
        traffic = []
        for s, d, t in uniform_traffic(mesh, blocks.unusable, 60, rng, 10):
            from repro.faults.coverage import minimal_path_exists

            if minimal_path_exists(blocks.unusable, s, d):
                traffic.append((s, d, t))
        stats = run_workload(mesh, policy, traffic)
        assert stats.delivered == len(traffic)
        assert stats.average_stretch == 1.0

    def test_load_increases_latency(self, rng):
        """More offered traffic in the same window means more stalling."""
        mesh, blocks = _clean_mesh(16)
        policy = GreedyAdaptiveRouter(mesh, blocks.unusable)
        light = run_workload(
            mesh, policy, uniform_traffic(mesh, blocks.unusable, 20, rng, 5)
        )
        heavy = run_workload(
            mesh, policy, uniform_traffic(mesh, blocks.unusable, 400, rng, 5)
        )
        assert heavy.stall_cycles > light.stall_cycles
        assert heavy.average_latency > light.average_latency


class TestUniformTraffic:
    def test_triples_well_formed(self, rng):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [(5, 5)])
        triples = uniform_traffic(mesh, blocks.unusable, 50, rng, 8)
        assert len(triples) == 50
        for source, dest, when in triples:
            assert source != dest
            assert not blocks.unusable[source] and not blocks.unusable[dest]
            assert 0 <= when < 8


class TestConservation:
    def test_every_packet_accounted(self, rng):
        """delivered + dropped == offered, for any policy and workload."""
        mesh = Mesh2D(16, 16)
        faults = uniform_faults(mesh, 25, rng)
        blocks = build_faulty_blocks(mesh, faults)
        policy = GreedyAdaptiveRouter(mesh, blocks.unusable)
        traffic = uniform_traffic(mesh, blocks.unusable, 120, rng, 15)
        stats = run_workload(mesh, policy, traffic)
        assert stats.delivered + stats.dropped == stats.offered == 120
        assert len(stats.latencies) == stats.delivered
        assert len(stats.hop_counts) == stats.delivered
