"""Alert rules: unit semantics on synthetic series, chaos integration."""

import numpy as np
import pytest

from repro.chaos import ChannelFaultPlan, ChaosSchedule, verify_convergence
from repro.chaos.schedule import ChaosEvent
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.obs import (
    AlertEngine,
    Observatory,
    RateRule,
    RatioRule,
    RingBufferSink,
    SampleStore,
    StallRule,
    ThresholdRule,
    Tracer,
    convergence_stall,
    default_rules,
    drop_rate_slo,
    queue_runaway,
    retransmit_storm,
)


def _store(**series):
    """A store fed from parallel lists: _store(a=[...], b=[...])."""
    store = SampleStore()
    length = max(len(values) for values in series.values())
    for tick in range(length):
        store.append(
            float(tick),
            {name: float(values[min(tick, len(values) - 1)]) for name, values in series.items()},
        )
    return store


class TestThresholdRule:
    def test_fires_on_breach(self):
        rule = ThresholdRule("deep", "q", ">", 10.0)
        assert rule.check(_store(q=[5, 11])) == 11.0
        assert rule.check(_store(q=[5, 9])) is None

    def test_missing_series_is_healthy(self):
        assert ThresholdRule("deep", "q", ">", 10.0).check(_store(x=[1])) is None

    def test_all_operators(self):
        store = _store(q=[5])
        assert ThresholdRule("r", "q", ">=", 5.0).check(store) == 5.0
        assert ThresholdRule("r", "q", "<=", 5.0).check(store) == 5.0
        assert ThresholdRule("r", "q", "<", 5.0).check(store) is None


class TestRateRule:
    def test_rate_over_window(self):
        # 10/tick growth over an 8-tick window.
        store = _store(c=[tick * 10 for tick in range(12)])
        assert RateRule("fast", "c", ">", 9.0, window=8.0).check(store) == pytest.approx(10.0)
        assert RateRule("fast", "c", ">", 11.0, window=8.0).check(store) is None

    def test_quiet_during_warmup(self):
        store = _store(c=[0, 100])  # only 1 tick of history, window 8
        assert RateRule("fast", "c", ">", 1.0, window=8.0).check(store) is None


class TestRatioRule:
    def test_ratio_with_floor(self):
        store = _store(r=[0] * 5 + [40] * 5, c=[0] * 5 + [10] * 5)
        rule = RatioRule("storm", "r", "c", 0.5, window=8.0, floor=16.0)
        assert rule.check(store) == pytest.approx(4.0)
        # Below the numerator floor: noise, not a storm.
        quiet = _store(r=[0] * 5 + [8] * 5, c=[0] * 5 + [1] * 5)
        assert rule.check(quiet) is None

    def test_offset_discounts_doomed_retries(self):
        # 40 retries, 36 of them into down links (dropped): live delta 4.
        store = _store(
            r=[0] * 5 + [40] * 5, d=[0] * 5 + [36] * 5, c=[0] * 5 + [10] * 5
        )
        rule = RatioRule("storm", "r", "c", 0.3, window=8.0, floor=16.0, offset="d")
        assert rule.check(store) is None
        without_offset = RatioRule("storm", "r", "c", 0.3, window=8.0, floor=16.0)
        assert without_offset.check(store) == pytest.approx(4.0)

    def test_describe_mentions_offset(self):
        rule = RatioRule("storm", "r", "c", 0.3, offset="d")
        assert "(r - d)" in rule.describe(1.5)


class TestStallRule:
    def test_activity_without_progress(self):
        store = _store(p=[50] * 12, a=[tick * 4 for tick in range(12)])
        rule = StallRule("stall", "p", "a", window=8.0, floor=16.0)
        assert rule.check(store) == pytest.approx(32.0)

    def test_floor_gates_benign_churn(self):
        store = _store(p=[50] * 12, a=[tick for tick in range(12)])
        assert StallRule("stall", "p", "a", window=8.0, floor=16.0).check(store) is None

    def test_progress_resolves(self):
        store = _store(p=[tick for tick in range(12)], a=[tick * 40 for tick in range(12)])
        assert StallRule("stall", "p", "a", window=8.0, floor=16.0).check(store) is None


class TestAlertEngine:
    def test_latch_one_alert_per_excursion(self):
        rule = ThresholdRule("deep", "q", ">", 10.0)
        engine = AlertEngine((rule,))
        store = SampleStore()
        pattern = [5, 20, 30, 5, 20]  # breach, breach, resolve, breach
        for tick, value in enumerate(pattern):
            store.append(float(tick), {"q": float(value)})
            engine.evaluate(float(tick), store)
        assert len(engine.firings) == 2
        assert engine.active == ("deep",)

    def test_for_ticks_consecutive_gate(self):
        rule = ThresholdRule("deep", "q", ">", 10.0, for_ticks=3)
        engine = AlertEngine((rule,))
        store = SampleStore()
        for tick, value in enumerate([20, 20, 5, 20, 20, 20]):
            store.append(float(tick), {"q": float(value)})
            engine.evaluate(float(tick), store)
        # First streak broke at 2; only the second reaches 3 consecutive.
        assert len(engine.firings) == 1
        assert engine.firings[0].tick == 5.0

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError):
            AlertEngine((queue_runaway(), queue_runaway()))

    def test_counts_zero_filled(self):
        engine = AlertEngine(default_rules())
        counts = engine.counts()
        assert counts["convergence-stall"] == 0
        assert set(counts) == {rule.name for rule in default_rules()}

    def test_events_only_through_explicit_tracer(self):
        ring = RingBufferSink()
        rule = ThresholdRule("deep", "q", ">", 10.0)
        engine = AlertEngine((rule,), tracer=Tracer(ring))
        store = SampleStore()
        for tick, value in enumerate([20, 5]):
            store.append(float(tick), {"q": float(value)})
            engine.evaluate(float(tick), store)
        kinds = [(event.kind, event.data["state"]) for event in ring]
        assert kinds == [("alert", "firing"), ("alert", "resolved")]

    def test_fired_lookup(self):
        engine = AlertEngine((ThresholdRule("deep", "q", ">", 10.0),))
        store = SampleStore()
        store.append(0.0, {"q": 20.0})
        engine.evaluate(0.0, store)
        assert engine.fired()
        assert engine.fired("deep")
        assert not engine.fired("other")


def _flap_schedule(mesh, faults, until=800.0):
    """Crash/revive flapping that keeps restarting formation waves."""
    victims = [c for c in [(4, 4), (4, 5)] if c not in set(faults)]
    events = []
    t = 20.0
    while t < until:
        for victim in victims:
            events.append(ChaosEvent(t, "crash", victim))
            events.append(ChaosEvent(t + 8.0, "revive", victim))
        t += 24.0
    return ChaosSchedule(events)


class TestChaosIntegration:
    def test_clean_run_is_silent_under_default_rules(self):
        mesh = Mesh2D(8, 8)
        rng = np.random.default_rng(1)
        faults = uniform_faults(mesh, 4, rng)
        observatory = Observatory()
        report = verify_convergence(
            mesh, faults, None, None, sample_pairs=4, seed=1,
            observatory=observatory,
        )
        assert report.ok
        assert report.alerts == ()
        assert observatory.healthz()["status"] == "ok"

    def test_flap_schedule_fires_convergence_stall(self):
        mesh = Mesh2D(8, 8)
        rng = np.random.default_rng(5)
        faults = uniform_faults(mesh, 3, rng)
        observatory = Observatory(rules=(convergence_stall(deadline=512.0),))
        report = verify_convergence(
            mesh, faults, None, _flap_schedule(mesh, faults),
            sample_pairs=4, seed=5, observatory=observatory,
        )
        assert [alert.rule for alert in report.alerts] == ["convergence-stall"]
        # The stall is informational: the run still re-converged.
        assert report.ok
        assert "alert(s) fired: convergence-stall" in report.summary()

    def test_heavy_loss_fires_retransmit_storm(self):
        mesh = Mesh2D(10, 10)
        rng = np.random.default_rng(2)
        faults = uniform_faults(mesh, 4, rng)
        plan = ChannelFaultPlan(drop=0.4, duplicate=0.05, seed=2)
        observatory = Observatory(rules=(retransmit_storm(), drop_rate_slo()))
        report = verify_convergence(
            mesh, faults, plan, None, sample_pairs=4, seed=2,
            observatory=observatory,
        )
        fired = {alert.rule for alert in report.alerts}
        assert "retransmit-storm" in fired

    def test_moderate_loss_stays_silent(self):
        """5% loss is the baseline chaos workload, not an incident."""
        mesh = Mesh2D(10, 10)
        rng = np.random.default_rng(3)
        faults = uniform_faults(mesh, 4, rng)
        plan = ChannelFaultPlan(drop=0.05, duplicate=0.02, seed=3)
        schedule = ChaosSchedule.random(mesh, rng, events=4, forbidden=set(faults))
        report = verify_convergence(
            mesh, faults, plan, schedule, sample_pairs=4, seed=3,
            observatory=Observatory(),
        )
        assert report.ok
        assert report.alerts == ()
