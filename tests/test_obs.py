"""Tests for the observability layer (repro.obs) and its integration."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.extensions import extension1_decision
from repro.core.routing import WuRouter, route_with_decision
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.obs import (
    EVENT_KINDS,
    JsonlDecodeError,
    JsonlSink,
    MetricsSink,
    NULL_TRACER,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    use_tracer,
)
from repro.obs.tracer import _NULL_SPAN, NullTracer
from repro.routing.detour import DetourRouter
from repro.routing.router import GreedyAdaptiveRouter, RoutingError, x_first_tie_breaker


def _scenario(side=24, faults=20, seed=7):
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    return generate_scenario(mesh, faults, rng), rng


class TestEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(kind="banana", seq=0)

    def test_jsonable_payload(self):
        from repro.mesh.geometry import Direction

        event = TraceEvent(
            kind="hop",
            seq=3,
            data={"at": (1, 2), "dir": Direction.EAST, "n": np.int64(5)},
        )
        payload = event.to_dict()
        assert payload["data"] == {"at": [1, 2], "dir": "EAST", "n": 5}
        json.dumps(payload)  # serializable end-to-end

    def test_vocabulary_is_closed(self):
        assert "hop" in EVENT_KINDS and "span_end" in EVENT_KINDS


class TestNullTracer:
    """The uninstrumented path must stay observably free of work."""

    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared_singleton(self):
        assert NULL_TRACER.span("esl.compute", n=8) is _NULL_SPAN
        assert NULL_TRACER.span("other") is NULL_TRACER.span("another")

    def test_emit_is_noop(self):
        NULL_TRACER.emit("hop", at=(0, 0), to=(1, 0))  # must not raise or buffer

    def test_uninstrumented_route_emits_nothing(self):
        ring = RingBufferSink()
        tracer = Tracer(ring)
        scenario, _ = _scenario(side=16, faults=0, seed=1)
        router = WuRouter(scenario.mesh, scenario.blocks)
        router.route((0, 0), (3, 3))  # tracer never installed
        assert len(ring) == 0
        with use_tracer(tracer):
            router.route((0, 0), (3, 3))
        assert len(ring) > 0

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
        previous = set_tracer(tracer)
        assert previous is NULL_TRACER
        assert set_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER


class TestSpanIds:
    def test_interleaved_spans_pair_by_span_id(self):
        """Same-name spans overlap; span_id (not name) is what pairs them,
        and each span_end names its own span_start as its cause."""
        ring = RingBufferSink()
        tracer = Tracer(ring)
        outer, inner = tracer.span("esl.compute", n=1), tracer.span("esl.compute", n=2)
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # out of order on purpose
        inner.__exit__(None, None, None)
        assert outer.span_id != inner.span_id
        starts = {e.data["span_id"]: e for e in ring if e.kind == "span_start"}
        ends = [e for e in ring if e.kind == "span_end"]
        assert len(starts) == len(ends) == 2
        for end in ends:
            start = starts[end.data["span_id"]]
            assert end.cause == start.seq
            assert end.data["n"] == start.data["n"]
        assert [end.data["n"] for end in ends] == [1, 2]

    def test_span_ids_are_per_tracer(self):
        a, b = Tracer(RingBufferSink()), Tracer(RingBufferSink())
        with a.span("x") as first, b.span("x") as other:
            assert first.span_id == other.span_id == 0
        with a.span("x") as second:
            assert second.span_id == 1


class TestSinks:
    def test_ring_buffer_drops_oldest(self):
        ring = RingBufferSink(capacity=3)
        tracer = Tracer(ring)
        for i in range(5):
            tracer.emit("hop", index=i)
        assert len(ring) == 3
        assert [event.data["index"] for event in ring] == [2, 3, 4]

    def test_jsonl_round_trip(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(target))
        tracer.emit("route_start", source=(0, 0), dest=(5, 5), distance=10)
        tracer.emit("hop", at=(0, 0), to=(1, 0), index=0, rule="adaptive")
        with tracer.span("esl.compute", n=8):
            pass
        tracer.close()

        events = read_jsonl(target)
        assert [e.kind for e in events] == ["route_start", "hop", "span_start", "span_end"]
        assert [e.seq for e in events] == [0, 1, 2, 3]
        assert events[1].data["to"] == [1, 0]
        assert events[3].data["duration"] >= 0.0
        # Round trip is exact at the canonical-dict level.
        original = [e.to_dict() for e in [*read_jsonl(target)]]
        assert [e.to_dict() for e in events] == original

    def test_jsonl_context_manager_closes(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        with JsonlSink(target) as sink:
            Tracer(sink).emit("hop", at=(0, 0), to=(1, 0))
        assert sink._stream.closed
        assert [e.kind for e in read_jsonl(target)] == ["hop"]

    def test_jsonl_round_trips_non_ascii_and_nested_payloads(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        payload = {
            "note": "ésumé — ブロック ✓",
            "nested": {"rect": {"min": [0, 0], "max": [3, 4]}, "tags": ["a", "ü"]},
        }
        with JsonlSink(target) as sink:
            Tracer(sink).emit("block_hit", **payload)
        event = read_jsonl(target)[0]
        assert event.data["note"] == payload["note"]
        assert event.data["nested"] == payload["nested"]

    def test_read_jsonl_names_the_offending_line(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        good = '{"kind": "hop", "seq": 0, "data": {}}'
        target.write_text(good + "\n\n" + "{not json\n" + good + "\n")
        with pytest.raises(JsonlDecodeError) as excinfo:
            read_jsonl(target)
        assert excinfo.value.line_number == 3
        assert excinfo.value.source == str(target)
        assert "line 3" in str(excinfo.value)

    def test_read_jsonl_rejects_wrong_shape_with_line(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text('{"kind": "hop", "seq": 0, "data": {}}\n{"seq": 1}\n')
        with pytest.raises(JsonlDecodeError) as excinfo:
            read_jsonl(target)
        assert excinfo.value.line_number == 2

    def test_read_jsonl_stream_source_named(self):
        stream = io.StringIO("{broken\n")
        with pytest.raises(JsonlDecodeError) as excinfo:
            read_jsonl(stream)
        assert excinfo.value.source == "<stream>"
        assert excinfo.value.line_number == 1

    def test_jsonl_does_not_close_borrowed_stream(self):
        stream = io.StringIO()
        with JsonlSink(stream) as sink:
            Tracer(sink).emit("hop", at=(0, 0), to=(1, 0))
        assert not stream.closed
        stream.seek(0)
        assert len(read_jsonl(stream)) == 1

    def test_multiple_sinks_see_every_event(self):
        ring, metrics = RingBufferSink(), MetricsSink()
        tracer = Tracer(ring, metrics)
        tracer.emit("detour", at=(0, 0), to=(0, 1))
        assert len(ring) == 1
        assert metrics.event_counts["detour"] == 1


class TestJsonlRotation:
    def test_rotates_and_bounds_the_generations(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        sink = JsonlSink(target, max_bytes=200, keep=3)
        tracer = Tracer(sink)
        for i in range(100):
            tracer.emit("hop", index=i)
        tracer.close()
        assert sink.rotations > 3
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"}
        # Every generation is valid JSONL, .1 is newer than .2, and the
        # newest event survived the churn.
        survivors = []
        for path in tmp_path.iterdir():
            survivors.extend(e.data["index"] for e in read_jsonl(path))
        assert max(survivors) == 99
        gen1 = read_jsonl(tmp_path / "trace.jsonl.1")
        gen2 = read_jsonl(tmp_path / "trace.jsonl.2")
        assert gen1[-1].data["index"] > gen2[-1].data["index"]

    def test_keep_one_truncates_in_place(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        sink = JsonlSink(target, max_bytes=120, keep=1)
        tracer = Tracer(sink)
        for i in range(50):
            tracer.emit("hop", index=i)
        tracer.close()
        assert sink.rotations > 0
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]
        assert target.stat().st_size < 10 * 120  # bounded, not appended forever

    def test_rotation_validation(self, tmp_path):
        with pytest.raises(ValueError, match="path target"):
            JsonlSink(io.StringIO(), max_bytes=10)
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="keep"):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=10, keep=0)

    def test_unbounded_sink_never_rotates(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        with JsonlSink(target) as sink:
            tracer = Tracer(sink)
            for i in range(200):
                tracer.emit("hop", index=i)
        assert sink.rotations == 0
        assert len(read_jsonl(target)) == 200


class _ParanoidTracer(NullTracer):
    """A null tracer that fails the test if anything emits through it."""

    def emit(self, kind, *, cause=None, **data):
        raise AssertionError(f"uninstrumented run emitted {kind!r}: {data}")


class TestUninstrumentedFastPath:
    """With the null tracer installed, no protocol or router may build or
    emit a single event (spans are legitimately unguarded; only ``emit``
    must stay silent)."""

    def test_all_six_protocols_emit_nothing(self):
        from repro.core.pivots import recursive_center_pivots
        from repro.faults.mcc import MCCType
        from repro.mesh.geometry import Rect
        from repro.simulator.protocols import (
            run_block_formation,
            run_boundary_distribution,
            run_mcc_formation,
            run_pivot_broadcast,
            run_region_exchange,
            run_safety_propagation,
        )

        scenario, _ = _scenario(side=10, faults=6, seed=2)
        mesh, blocks = scenario.mesh, scenario.blocks
        unusable = blocks.unusable
        levels = compute_safety_levels(mesh, unusable)
        pivots = recursive_center_pivots(Rect(0, mesh.n - 1, 0, mesh.m - 1), 2)
        with use_tracer(_ParanoidTracer()):
            run_block_formation(mesh, scenario.faults)
            run_mcc_formation(mesh, scenario.faults, MCCType.TYPE_ONE)
            run_safety_propagation(mesh, unusable)
            run_boundary_distribution(mesh, blocks.rects(), unusable)
            run_region_exchange(mesh, unusable, levels)
            run_pivot_broadcast(mesh, unusable, levels, pivots)

    def test_both_routers_emit_nothing(self):
        import contextlib

        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        with use_tracer(_ParanoidTracer()):
            with contextlib.suppress(RoutingError):
                WuRouter(mesh, blocks).route((0, 0), (9, 9))
            with contextlib.suppress(RoutingError):
                DetourRouter(mesh, blocks).route((0, 0), (9, 9))
            with contextlib.suppress(RoutingError):
                GreedyAdaptiveRouter(
                    mesh, blocks.unusable, tie_breaker=x_first_tie_breaker
                ).route((5, 0), (5, 8))


class TestMetricsInvariants:
    def test_hop_events_equal_total_path_length(self):
        """Sum of ``hop`` events over a routed batch == sum of path lengths,
        including the manually reported neighbour hop of two-phase routes."""
        scenario, rng = _scenario(side=24, faults=20, seed=7)
        mesh, blocks = scenario.mesh, scenario.blocks
        blocked = blocks.unusable
        levels = compute_safety_levels(mesh, blocked)
        router = WuRouter(mesh, blocks)
        fallback = DetourRouter(mesh, blocks)
        free = [c for c in mesh.nodes() if not blocked[c]]

        metrics = MetricsSink()
        total_hops = 0
        decisions = set()
        with use_tracer(Tracer(metrics)):
            for _ in range(60):
                src = free[int(rng.integers(len(free)))]
                dst = free[int(rng.integers(len(free)))]
                if src == dst:
                    continue
                decision = extension1_decision(mesh, levels, blocked, src, dst)
                decisions.add(decision.kind.value)
                try:
                    if decision.ensures_sub_minimal:
                        path = route_with_decision(router, decision, blocked=blocked)
                    else:
                        path = fallback.route(src, dst)
                except RoutingError:
                    continue
                total_hops += path.hops
        assert total_hops > 0
        assert metrics.event_counts["hop"] == total_hops
        assert len(decisions) >= 2  # the batch exercised several rules

    def test_route_and_span_aggregation(self):
        metrics = MetricsSink()
        tracer = Tracer(metrics)
        tracer.emit("route_end", hops=10, minimal=True, detours=0)
        tracer.emit("route_end", hops=12, minimal=False, detours=1)
        tracer.emit("route_failed", at=(0, 0), reason="stuck")
        tracer.emit("extension_fired", decision="pivot-safe")
        with tracer.span("esl.compute", n=8):
            pass
        snapshot = metrics.snapshot()
        assert snapshot["routes"] == {
            "delivered": 2,
            "minimal": 1,
            "sub_minimal": 1,
            "failed": 1,
            "hops": metrics.hops_per_route.summary(),
            "detours": metrics.detours_per_route.summary(),
        }
        assert snapshot["decisions"] == {"pivot-safe": 1}
        assert snapshot["spans"]["esl.compute"]["count"] == 1
        json.dumps(snapshot)

    def test_protocol_msg_aggregation(self):
        metrics = MetricsSink()
        tracer = Tracer(metrics)
        for t, queue in ((0, 4), (0, 6), (1, 2)):
            tracer.emit("protocol_msg", msg="esl", time=t, queue=queue)
        assert metrics.message_counts == {"esl": 3}
        assert metrics.queue_depth.mean == 4.0
        per_tick = metrics.messages_per_tick()
        assert per_tick.count == 2 and per_tick.max == 2

    def test_table_renders_all_sections(self):
        scenario, _ = _scenario(side=16, faults=10, seed=3)
        metrics = MetricsSink()
        with use_tracer(Tracer(metrics)):
            from repro.simulator.protocols import run_safety_propagation

            run_safety_propagation(scenario.mesh, scenario.blocks.unusable)
            WuRouter(scenario.mesh, scenario.blocks).route((0, 0), (2, 2))
        table = metrics.to_table()
        for section in ("events", "protocol messages", "routes", "simulator", "engine", "spans"):
            assert section in table
        assert "protocol.safety_propagation" in metrics.span_durations


class TestPartialTraceWidening:
    def test_greedy_stuck_error_carries_full_trace(self):
        """Satellite fix: RoutingError.partial is the whole walk, not just
        the stuck node (tests the paper's Figure-3 greedy failure)."""
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        router = GreedyAdaptiveRouter(mesh, blocks.unusable, tie_breaker=x_first_tie_breaker)
        with pytest.raises(RoutingError) as excinfo:
            router.route((5, 0), (5, 8))
        partial = excinfo.value.partial
        assert partial[0] == (5, 0)  # starts at the source...
        assert len(partial) > 1  # ...and accumulates the walk
        assert partial == [(5, 0), (5, 1), (5, 2), (5, 3)]

    def test_route_failed_event_carries_partial(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        router = GreedyAdaptiveRouter(mesh, blocks.unusable, tie_breaker=x_first_tie_breaker)
        ring = RingBufferSink()
        with use_tracer(Tracer(ring)):
            with pytest.raises(RoutingError):
                router.route((5, 0), (5, 8))
        failed = [e for e in ring if e.kind == "route_failed"]
        assert len(failed) == 1
        assert failed[0].data["partial"] == [(5, 0), (5, 1), (5, 2), (5, 3)]


class TestEngineCounters:
    def test_run_counts_against_lifetime_total(self):
        from repro.simulator.engine import Engine

        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        assert engine.run() == 3
        assert engine.events_processed == 3
        for _ in range(2):
            engine.schedule(1.0, lambda: None)
        assert engine.run() == 2  # per-run delta, not the lifetime total
        assert engine.events_processed == 5
        assert engine.metrics_snapshot() == {
            "now": 2.0,
            "pending": 0,
            "events_processed": 5,
        }

    def test_max_events_budget_uses_unified_counter(self):
        from repro.simulator.engine import Engine

        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="budget of 10"):
            engine.run(max_events=10)  # pre-warm the lifetime counter
        assert engine.events_processed == 10
        with pytest.raises(RuntimeError, match="budget of 5"):
            engine.run(max_events=5)  # must budget 5 *new* events, not 5 total
        assert engine.events_processed == 15


def _run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestTraceCliDeterminism:
    SMOKE = ["trace", "0,0", "7,7", "--faults", "3", "--seed", "1"]
    SUBMIN = ["trace", "0,0", "0,4", "--side", "24", "--faults", "20", "--seed", "7"]

    def test_smoke_trace_is_deterministic(self):
        code1, out1 = _run_cli(self.SMOKE)
        code2, out2 = _run_cli(self.SMOKE)
        assert code1 == code2 == 0
        assert out1 == out2
        assert "hop" in out1 and "WuRouter" in out1

    def test_sub_minimal_trace_names_the_justification(self):
        code, output = _run_cli(self.SUBMIN)
        assert code == 0
        assert "spare-neighbor-safe" in output  # which extension fired...
        assert "stay-on-line" in output  # ...and the per-hop rule
        assert "sub-minimal, +2" in output
        assert output == _run_cli(self.SUBMIN)[1]
