"""Equivalence suite: cross-pattern batched kernels vs the scalar pipeline.

Every kernel in :mod:`repro.core.batched_patterns` promises bit-identical
results to its scalar counterpart, pattern by pattern.  The suite asserts
that promise three ways:

- **exhaustively** over every 4x4 fault pattern (all 65536, in chunks) for
  block formation, and over every *reachable* blocked grid (the 3360
  distinct fixpoints of those patterns -- the ESL and condition kernels
  consume only the blocked grid, so this is exhaustive for them too);
- over **seeded random 32x32 patterns** (50 seeds) with destinations in
  every quadrant, against per-destination scalar decisions;
- at the **engine level**: ``ConditionExperiment.run(engine="batched")``
  reproduces the scalar engine's FigureSeries point for point, including
  the random-pivot strategies and the MCC fallback path.

The generator-stream property behind the engine equivalence --
``uniform_faults_batch`` advances each generator exactly as the scalar
``uniform_faults`` does -- gets its own 100-seed test.
"""

import numpy as np
import pytest

from repro.core.batched_patterns import (
    batch_disable_fixpoint,
    batch_pattern_extension1,
    batch_pattern_extension2,
    batch_pattern_extension3,
    batch_pattern_is_safe,
    batch_pattern_path_exists,
    batch_safety_levels,
    build_source_sample_tables,
)
from repro.core.array_api import to_numpy
from repro.core.conditions import is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision_from_segments,
    extension3_decision,
)
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import SafetyLevels, compute_safety_levels
from repro.core.segments import build_axis_segments
from repro.faults.blocks import disable_fixpoint
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults, uniform_faults_batch
from repro.mesh.frames import Frame
from repro.mesh.geometry import Direction, Rect
from repro.mesh.topology import Mesh2D


def _all_4x4_patterns() -> np.ndarray:
    bits = np.arange(1 << 16, dtype=np.uint32)
    cells = (bits[:, None] >> np.arange(16, dtype=np.uint32)) & 1
    return cells.astype(bool).reshape(-1, 4, 4)


def _scalar_levels(mesh: Mesh2D, levels, index: int) -> SafetyLevels:
    """Pattern ``index`` of a :class:`BatchedSafetyLevels` as the scalar type."""
    return SafetyLevels(
        mesh,
        to_numpy(levels.east[index]),
        to_numpy(levels.south[index]),
        to_numpy(levels.west[index]),
        to_numpy(levels.north[index]),
    )


# ----------------------------------------------------------------------
# Exhaustive 4x4
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def exhaustive():
    """(patterns, blocked, unique_blocked) over every 4x4 fault pattern."""
    patterns = _all_4x4_patterns()
    chunks = [
        to_numpy(batch_disable_fixpoint(patterns[start : start + 8192]))
        for start in range(0, len(patterns), 8192)
    ]
    blocked = np.concatenate(chunks)
    codes = blocked.reshape(-1, 16) @ (1 << np.arange(16, dtype=np.int64))
    _, first = np.unique(codes, return_index=True)
    return patterns, blocked, blocked[np.sort(first)]


class TestExhaustive4x4:
    def test_formation_matches_scalar(self, exhaustive):
        patterns, blocked, _ = exhaustive
        expected = np.stack([disable_fixpoint(grid) for grid in patterns])
        np.testing.assert_array_equal(blocked, expected)

    def test_esl_matches_scalar(self, exhaustive):
        _, _, unique_blocked = exhaustive
        mesh = Mesh2D(4, 4)
        levels = batch_safety_levels(unique_blocked)
        for index, grid in enumerate(unique_blocked):
            expected = compute_safety_levels(mesh, grid)
            got = _scalar_levels(mesh, levels, index)
            np.testing.assert_array_equal(got.east, expected.east)
            np.testing.assert_array_equal(got.south, expected.south)
            np.testing.assert_array_equal(got.west, expected.west)
            np.testing.assert_array_equal(got.north, expected.north)

    @pytest.fixture(scope="class")
    def condition_case(self, exhaustive):
        """Every reachable blocked grid whose source node survives, with all
        16 destinations -- exhaustive input space for the condition kernels."""
        _, _, unique_blocked = exhaustive
        mesh = Mesh2D(4, 4)
        source = (1, 1)
        grids = unique_blocked[~unique_blocked[:, source[0], source[1]]]
        levels = batch_safety_levels(grids)
        dests_one = np.array(
            [(x, y) for x in range(4) for y in range(4)], dtype=np.int64
        )
        dests = np.broadcast_to(dests_one, (len(grids),) + dests_one.shape)
        scalar = [_scalar_levels(mesh, levels, b) for b in range(len(grids))]
        return mesh, grids, levels, source, dests, dests_one, scalar

    def test_def3_matches_scalar(self, condition_case):
        _, grids, levels, source, dests, dests_one, scalar = condition_case
        mask = to_numpy(batch_pattern_is_safe(levels, source, dests))
        for b in range(len(grids)):
            expected = [
                is_safe(scalar[b], source, tuple(map(int, dest)))
                for dest in dests_one
            ]
            assert mask[b].tolist() == expected

    @pytest.mark.parametrize("allow_sub_minimal", [False, True])
    def test_extension1_matches_scalar(self, condition_case, allow_sub_minimal):
        mesh, grids, levels, source, dests, dests_one, scalar = condition_case
        mask = to_numpy(
            batch_pattern_extension1(
                grids, levels, source, dests, allow_sub_minimal=allow_sub_minimal
            )
        )
        for b in range(len(grids)):
            for i, dest in enumerate(dests_one):
                decision = extension1_decision(
                    mesh, scalar[b], grids[b], source, tuple(map(int, dest)),
                    allow_sub_minimal=allow_sub_minimal,
                )
                expected = (
                    decision.ensures_sub_minimal
                    if allow_sub_minimal
                    else decision.ensures_minimal
                )
                assert bool(mask[b, i]) == expected, (b, i)

    @pytest.mark.parametrize("segment_size", [1, 2, None])
    def test_extension2_matches_scalar(self, condition_case, segment_size):
        mesh, grids, levels, source, dests, dests_one, scalar = condition_case
        mask = to_numpy(
            batch_pattern_extension2(
                levels, source, dests, segment_size, (mesh.n, mesh.m)
            )
        )
        frame = Frame(origin=source)
        for b in range(len(grids)):
            east = build_axis_segments(
                mesh, scalar[b], frame, Direction.EAST, segment_size
            )
            north = build_axis_segments(
                mesh, scalar[b], frame, Direction.NORTH, segment_size
            )
            for i, dest in enumerate(dests_one):
                expected = extension2_decision_from_segments(
                    scalar[b], source, tuple(map(int, dest)), east, north
                ).ensures_minimal
                assert bool(mask[b, i]) == expected, (b, i)

    def test_extension3_matches_scalar(self, condition_case):
        mesh, grids, levels, source, dests, dests_one, scalar = condition_case
        region = Rect(source[0], mesh.n - 1, source[1], mesh.m - 1)
        pivots = recursive_center_pivots(region, 2)
        pivot_arr = np.array(pivots, dtype=np.int64).reshape(-1, 2)
        mask = to_numpy(
            batch_pattern_extension3(grids, levels, source, dests, pivot_arr)
        )
        for b in range(len(grids)):
            for i, dest in enumerate(dests_one):
                expected = extension3_decision(
                    mesh, scalar[b], grids[b], source, tuple(map(int, dest)), pivots
                ).ensures_minimal
                assert bool(mask[b, i]) == expected, (b, i)

    def test_path_exists_matches_scalar(self, condition_case):
        _, grids, _, source, dests, dests_one, _ = condition_case
        mask = to_numpy(batch_pattern_path_exists(grids, source, dests))
        for b in range(len(grids)):
            for i, dest in enumerate(dests_one):
                if grids[b, dest[0], dest[1]]:
                    continue  # the protocol only queries block-free endpoints
                expected = minimal_path_exists(
                    grids[b], source, tuple(map(int, dest))
                )
                assert bool(mask[b, i]) == expected, (b, i)


# ----------------------------------------------------------------------
# Seeded random 32x32
# ----------------------------------------------------------------------


SIDE = 32
N_PATTERNS = 50


@pytest.fixture(scope="module")
def random_case():
    """50 seeded random 32x32 patterns with per-pattern destinations in
    every quadrant of the (central) source."""
    mesh = Mesh2D(SIDE, SIDE)
    source = mesh.center
    rng = np.random.default_rng(99)
    patterns = []
    while len(patterns) < N_PATTERNS:
        faults = uniform_faults(mesh, 40, rng, forbidden={source})
        grid = np.zeros((SIDE, SIDE), dtype=bool)
        for coord in faults:
            grid[coord] = True
        blocked = disable_fixpoint(grid)
        if not blocked[source]:
            patterns.append((grid, blocked))
    faulty = np.stack([grid for grid, _ in patterns])
    blocked = np.stack([blocked for _, blocked in patterns])
    dests = np.zeros((N_PATTERNS, 24, 2), dtype=np.int64)
    for b in range(N_PATTERNS):
        free = np.argwhere(~blocked[b])
        dests[b] = free[rng.integers(len(free), size=24)]
    return mesh, source, faulty, blocked, dests


class TestRandom32x32:
    def test_formation_and_esl_match_scalar(self, random_case):
        mesh, _, faulty, blocked, _ = random_case
        got = to_numpy(batch_disable_fixpoint(faulty))
        np.testing.assert_array_equal(got, blocked)
        levels = batch_safety_levels(blocked)
        for b in range(N_PATTERNS):
            expected = compute_safety_levels(mesh, blocked[b])
            got_b = _scalar_levels(mesh, levels, b)
            np.testing.assert_array_equal(got_b.east, expected.east)
            np.testing.assert_array_equal(got_b.south, expected.south)
            np.testing.assert_array_equal(got_b.west, expected.west)
            np.testing.assert_array_equal(got_b.north, expected.north)

    def test_conditions_match_scalar(self, random_case):
        mesh, source, _, blocked, dests = random_case
        levels = batch_safety_levels(blocked)
        region = Rect(source[0], mesh.n - 1, source[1], mesh.m - 1)
        pivots = recursive_center_pivots(region, 3)
        pivot_arr = np.array(pivots, dtype=np.int64).reshape(-1, 2)
        safe = to_numpy(batch_pattern_is_safe(levels, source, dests))
        ext1_min = to_numpy(
            batch_pattern_extension1(
                blocked, levels, source, dests, allow_sub_minimal=False
            )
        )
        ext1_sub = to_numpy(
            batch_pattern_extension1(
                blocked, levels, source, dests, allow_sub_minimal=True
            )
        )
        ext2 = to_numpy(
            batch_pattern_extension2(levels, source, dests, 5, (mesh.n, mesh.m))
        )
        ext3 = to_numpy(
            batch_pattern_extension3(blocked, levels, source, dests, pivot_arr)
        )
        exists = to_numpy(batch_pattern_path_exists(blocked, source, dests))
        frame = Frame(origin=source)
        for b in range(N_PATTERNS):
            scalar = _scalar_levels(mesh, levels, b)
            east = build_axis_segments(mesh, scalar, frame, Direction.EAST, 5)
            north = build_axis_segments(mesh, scalar, frame, Direction.NORTH, 5)
            for i in range(dests.shape[1]):
                dest = (int(dests[b, i, 0]), int(dests[b, i, 1]))
                assert bool(safe[b, i]) == is_safe(scalar, source, dest)
                d_min = extension1_decision(
                    mesh, scalar, blocked[b], source, dest,
                    allow_sub_minimal=False,
                )
                d_sub = extension1_decision(
                    mesh, scalar, blocked[b], source, dest,
                    allow_sub_minimal=True,
                )
                assert bool(ext1_min[b, i]) == d_min.ensures_minimal
                assert bool(ext1_sub[b, i]) == d_sub.ensures_sub_minimal
                assert bool(ext2[b, i]) == extension2_decision_from_segments(
                    scalar, source, dest, east, north
                ).ensures_minimal
                assert bool(ext3[b, i]) == extension3_decision(
                    mesh, scalar, blocked[b], source, dest, pivots
                ).ensures_minimal
                assert bool(exists[b, i]) == minimal_path_exists(
                    blocked[b], source, dest
                )

    def test_random_pivots_per_pattern(self, random_case):
        """Ragged per-pattern pivot lists (the random schemes) via padding
        + validity mask match the scalar decision pattern for pattern."""
        mesh, source, _, blocked, dests = random_case
        levels = batch_safety_levels(blocked)
        rng = np.random.default_rng(7)
        region = Rect(0, mesh.n - 1, 0, mesh.m - 1)
        pivot_lists = [
            random_pivots(region, 2, rng) for _ in range(N_PATTERNS)
        ]
        width = max(len(p) for p in pivot_lists)
        padded = np.zeros((N_PATTERNS, width, 2), dtype=np.int64)
        valid = np.zeros((N_PATTERNS, width), dtype=bool)
        for b, pivots in enumerate(pivot_lists):
            padded[b, : len(pivots)] = pivots
            valid[b, : len(pivots)] = True
        mask = to_numpy(
            batch_pattern_extension3(
                blocked, levels, source, dests, padded, pivot_valid=valid
            )
        )
        for b in range(0, N_PATTERNS, 10):
            scalar = _scalar_levels(mesh, levels, b)
            for i in range(dests.shape[1]):
                dest = (int(dests[b, i, 0]), int(dests[b, i, 1]))
                expected = extension3_decision(
                    mesh, scalar, blocked[b], source, dest, pivot_lists[b]
                ).ensures_minimal
                assert bool(mask[b, i]) == expected, (b, i)


# ----------------------------------------------------------------------
# Generator-stream fidelity
# ----------------------------------------------------------------------


class TestUniformFaultsBatch:
    def test_bit_identical_over_100_seeds(self):
        mesh = Mesh2D(16, 16)
        forbidden = {mesh.center}
        seeds = np.random.SeedSequence(1234).spawn(100)
        counts = [1 + (i * 7) % 40 for i in range(100)]
        batch_rngs = [np.random.default_rng(seed) for seed in seeds]
        grids = uniform_faults_batch(mesh, counts, batch_rngs, forbidden)
        for i, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            faults = uniform_faults(mesh, counts[i], rng, forbidden)
            expected = np.zeros((16, 16), dtype=bool)
            for coord in faults:
                expected[coord] = True
            np.testing.assert_array_equal(grids[i], expected, err_msg=str(i))
            # the generators advanced identically: next draws agree
            assert batch_rngs[i].integers(1 << 30) == rng.integers(1 << 30)

    def test_scalar_count_broadcasts(self):
        mesh = Mesh2D(8, 8)
        grids = uniform_faults_batch(mesh, 5, [1, 2, 3])
        assert grids.shape == (3, 8, 8)
        assert (grids.sum(axis=(1, 2)) == 5).all()


# ----------------------------------------------------------------------
# Engine-level equivalence
# ----------------------------------------------------------------------


def _snap(series):
    return (
        series.figure_id,
        tuple(series.xs),
        {
            name: [(e.value, e.low, e.high) for e in points]
            for name, points in series.series.items()
        },
    )


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def tiny_config(self):
        from repro.experiments import ExperimentConfig

        return ExperimentConfig.scaled(20, 3, 5, seed=31)

    def test_fig9_batched_matches_scalar(self, tiny_config):
        from repro.experiments.figures import fig9_extension1

        scalar = fig9_extension1(tiny_config, engine="scalar")
        batched = fig9_extension1(tiny_config, engine="batched")
        assert _snap(batched) == _snap(scalar)

    def test_fig12_batched_matches_scalar(self, tiny_config):
        """Fig 12 exercises the random-pivot replay and the MCC metrics'
        per-pattern fallback inside the batched shard evaluator."""
        from repro.experiments.figures import fig12_strategies

        scalar = fig12_strategies(tiny_config, engine="scalar")
        batched = fig12_strategies(tiny_config, engine="batched")
        assert _snap(batched) == _snap(scalar)

    def test_fig9_strict_backend_matches(self, tiny_config):
        from repro.experiments.figures import fig9_extension1

        scalar = fig9_extension1(tiny_config, engine="scalar")
        strict = fig9_extension1(tiny_config, engine="batched", backend="strict")
        assert _snap(strict) == _snap(scalar)

    def test_unknown_engine_rejected(self, tiny_config):
        from repro.experiments.figures import fig9_extension1

        with pytest.raises(ValueError, match="engine"):
            fig9_extension1(tiny_config, engine="warp")

    def test_unavailable_backend_fails_fast(self, tiny_config):
        import importlib.util

        from repro.experiments.figures import fig9_extension1

        if importlib.util.find_spec("cupy") is not None:
            pytest.skip("cupy present; nothing to fail fast on")
        with pytest.raises(RuntimeError, match="cupy"):
            fig9_extension1(tiny_config, engine="batched", backend="cupy")
