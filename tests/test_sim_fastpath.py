"""Simulator fast path: scheduler equivalence, O(1) accounting, cache bounds.

The tick-bucketed scheduler must be observationally identical to the
reference heap scheduler -- bit-identical event order, message counts, and
convergence times -- on every protocol the repo ships, including a live
``DynamicMesh`` injection sequence.
"""

import numpy as np
import pytest

from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import injection_sequence, uniform_faults
from repro.faults.mcc import MCCType
from repro.mesh.geometry import Direction
from repro.mesh.topology import Mesh2D
from repro.parallel.cache import ArtifactCache
from repro.simulator.engine import SCHEDULERS, Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork
from repro.simulator.process import NodeProcess
from repro.simulator.protocols import (
    run_block_formation,
    run_boundary_distribution,
    run_mcc_formation,
    run_pivot_broadcast,
    run_region_exchange,
    run_safety_propagation,
)
from repro.simulator.protocols.dynamic_update import DynamicMesh
from repro.simulator.traffic import PathPolicy


# ----------------------------------------------------------------------
# Engine.run(until=...) clock regression
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestRunUntilAdvancesClock:
    def test_clock_reaches_horizon_when_next_event_is_later(self, scheduler):
        engine = Engine(scheduler)
        hits = []
        for t in (1.0, 5.0):
            engine.schedule(t, hits.append, t)
        engine.run(until=3.0)
        assert hits == [1.0]
        assert engine.pending == 1
        # The clock must sit at the requested horizon, not lag at t=1.
        assert engine.now == 3.0

    def test_clock_reaches_horizon_when_queue_drains(self, scheduler):
        engine = Engine(scheduler)
        engine.schedule(1.0, lambda: None)
        engine.run(until=7.5)
        assert engine.pending == 0
        assert engine.now == 7.5

    def test_resumed_run_schedules_relative_to_horizon(self, scheduler):
        engine = Engine(scheduler)
        engine.run(until=10.0)
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.now == 11.0

    def test_event_exactly_at_horizon_is_delivered(self, scheduler):
        engine = Engine(scheduler)
        hits = []
        engine.schedule(3.0, hits.append, 3.0)
        processed = engine.run(until=3.0)
        assert hits == [3.0]
        assert processed == 1
        assert engine.pending == 0

    def test_float_drift_does_not_strand_horizon_events(self, scheduler):
        """Three chained 0.1 delays land at 0.30000000000000004 -- a few
        ulps past the horizon 0.3.  Such events must still be delivered
        (and counted), not stranded forever just past the clock."""
        engine = Engine(scheduler)
        hits = []

        def hop(remaining):
            hits.append(engine.now)
            if remaining:
                engine.schedule(0.1, hop, remaining - 1)

        engine.schedule(0.1, hop, 2)
        engine.run(until=0.3)
        assert len(hits) == 3
        assert engine.pending == 0

    def test_horizon_slack_does_not_pull_in_later_events(self, scheduler):
        """The ulp slack is microscopic: an event a genuine tick beyond
        the horizon stays pending."""
        engine = Engine(scheduler)
        engine.schedule(3.0, lambda: None)
        engine.schedule(3.0000001, lambda: None)
        assert engine.run(until=3.0) == 1
        assert engine.pending == 1


# ----------------------------------------------------------------------
# Property: bucket scheduler is bit-identical to the heap scheduler
# ----------------------------------------------------------------------
class TestSchedulerOrderProperty:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_identical_event_order_on_random_schedules(self, seed):
        """Random delays (with deliberate timestamp collisions) plus nested
        rescheduling produce the same (time, tag) trace on both schedulers."""
        delays = [0.0, 0.5, 1.0, 1.0, 1.5, 2.0, 2.5]

        def trace(scheduler: str) -> list[tuple[float, int]]:
            rng = np.random.default_rng(seed)
            engine = Engine(scheduler)
            log: list[tuple[float, int]] = []
            counter = [0]

            def fire(tag: int, depth: int) -> None:
                log.append((engine.now, tag))
                if depth > 0:
                    for _ in range(int(rng.integers(0, 3))):
                        counter[0] += 1
                        engine.schedule(
                            delays[int(rng.integers(len(delays)))],
                            fire, counter[0], depth - 1,
                        )

            for _ in range(20):
                counter[0] += 1
                engine.schedule(delays[int(rng.integers(len(delays)))],
                                fire, counter[0], 3)
            engine.run()
            return log

        heap_log = trace("heap")
        bucket_log = trace("buckets")
        assert bucket_log == heap_log

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Engine("calendar")


# ----------------------------------------------------------------------
# Protocol-level equivalence: heap vs buckets on every protocol
# ----------------------------------------------------------------------
def _scenario(side=16, fault_count=14, seed=11):
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, fault_count, rng, forbidden={mesh.center})
    blocks = build_faulty_blocks(mesh, faults)
    return mesh, faults, blocks


class TestProtocolSchedulerEquivalence:
    def test_block_formation(self):
        mesh, faults, _ = _scenario()
        heap = run_block_formation(mesh, faults, scheduler="heap")
        buckets = run_block_formation(mesh, faults, scheduler="buckets")
        assert np.array_equal(heap.unusable, buckets.unusable)
        assert heap.stats == buckets.stats

    def test_block_formation_legacy_delivery(self):
        """The seed path (heap + legacy delivery) matches the fast path."""
        mesh, faults, _ = _scenario()
        seed = run_block_formation(mesh, faults, scheduler="heap", delivery="legacy")
        fast = run_block_formation(mesh, faults)
        assert np.array_equal(seed.unusable, fast.unusable)
        assert seed.stats == fast.stats

    def test_safety_propagation(self):
        mesh, _, blocks = _scenario()
        heap = run_safety_propagation(mesh, blocks.unusable, scheduler="heap")
        buckets = run_safety_propagation(mesh, blocks.unusable, scheduler="buckets")
        for direction in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(heap.levels, direction), getattr(buckets.levels, direction)
            )
        assert heap.stats == buckets.stats

    def test_safety_propagation_legacy_delivery(self):
        mesh, _, blocks = _scenario()
        seed = run_safety_propagation(
            mesh, blocks.unusable, scheduler="heap", delivery="legacy"
        )
        fast = run_safety_propagation(mesh, blocks.unusable)
        for direction in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(seed.levels, direction), getattr(fast.levels, direction)
            )
        assert seed.stats == fast.stats

    def test_unknown_delivery_rejected(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            MeshNetwork(mesh, Engine(), _Sink, delivery="teleport")

    def test_boundary_distribution(self):
        mesh, _, blocks = _scenario()
        rects = blocks.rects()
        heap = run_boundary_distribution(mesh, rects, blocks.unusable, scheduler="heap")
        buckets = run_boundary_distribution(
            mesh, rects, blocks.unusable, scheduler="buckets"
        )
        assert heap.annotations == buckets.annotations
        assert heap.stats == buckets.stats

    def test_mcc_formation(self):
        mesh, faults, _ = _scenario()
        heap = run_mcc_formation(mesh, faults, MCCType.TYPE_ONE, scheduler="heap")
        buckets = run_mcc_formation(mesh, faults, MCCType.TYPE_ONE, scheduler="buckets")
        assert np.array_equal(heap.status, buckets.status)
        assert heap.stats == buckets.stats

    def test_region_exchange(self):
        mesh, _, blocks = _scenario()
        levels = compute_safety_levels(mesh, blocks.unusable)
        heap = run_region_exchange(mesh, blocks.unusable, levels, scheduler="heap")
        buckets = run_region_exchange(mesh, blocks.unusable, levels, scheduler="buckets")
        assert heap.row_knowledge == buckets.row_knowledge
        assert heap.column_knowledge == buckets.column_knowledge
        assert heap.stats == buckets.stats

    def test_pivot_broadcast(self):
        mesh, _, blocks = _scenario()
        levels = compute_safety_levels(mesh, blocks.unusable)
        pivots = [(2, 2), (13, 4), (7, 12)]
        heap = run_pivot_broadcast(
            mesh, blocks.unusable, levels, pivots, scheduler="heap"
        )
        buckets = run_pivot_broadcast(
            mesh, blocks.unusable, levels, pivots, scheduler="buckets"
        )
        assert heap.tables == buckets.tables
        assert heap.stats == buckets.stats

    def test_dynamic_mesh_ten_faults(self):
        mesh = Mesh2D(14, 14)
        faults = injection_sequence(mesh, 10, np.random.default_rng(5))

        def run(scheduler):
            dynamic = DynamicMesh(mesh, scheduler=scheduler)
            for fault in faults:
                dynamic.inject_fault(fault)
            return dynamic

        heap, buckets = run("heap"), run("buckets")
        # Identical InjectionReports (frozen dataclasses), ESL grids, blocks.
        assert heap.reports == buckets.reports
        assert np.array_equal(heap.unusable_grid(), buckets.unusable_grid())
        for direction in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(heap.safety_levels(), direction),
                getattr(buckets.safety_levels(), direction),
            )
        assert heap.total_messages == buckets.total_messages


# ----------------------------------------------------------------------
# Array-backed channel state and O(1) accounting
# ----------------------------------------------------------------------
class _Sink(NodeProcess):
    def on_message(self, message: Message) -> None:
        pass


class TestChannelArrays:
    def test_running_totals_match_per_channel_sums(self):
        mesh = Mesh2D(14, 14)
        dynamic = DynamicMesh(mesh)
        for fault in injection_sequence(mesh, 8, np.random.default_rng(3)):
            dynamic.inject_fault(fault)
        network = dynamic.network
        assert dynamic.total_messages == sum(
            c.messages_carried for c in network.channels.values()
        )
        assert dynamic.total_messages == sum(r.messages for r in dynamic.reports)
        assert network.messages_dropped_total == sum(
            c.messages_dropped for c in network.channels.values()
        )

    def test_channel_map_is_lazy_and_consistent(self):
        mesh = Mesh2D(3, 2)
        network = MeshNetwork(mesh, Engine(), _Sink)
        # 2 directed channels per undirected edge: 3*1 vertical + 2*2 horizontal.
        assert len(network.channels) == 2 * (3 * 1 + 2 * 2)
        assert set(network.channels) == {
            (coord, direction)
            for coord in mesh.nodes()
            for direction, _ in mesh.neighbor_items(coord)
        }
        assert network.channels.get(((0, 0), Direction.WEST)) is None
        with pytest.raises(KeyError):
            network.channels[((0, 0), Direction.WEST)]

    def test_view_counters_and_take_down(self):
        mesh = Mesh2D(3, 1)
        network = MeshNetwork(mesh, Engine(), _Sink)
        network.send_from((0, 0), Direction.EAST, "ping", None)
        channel = network.channels[((0, 0), Direction.EAST)]
        assert channel.up and channel.messages_carried == 1
        assert "up" in str(channel)
        channel.take_down()
        # Views are stateless facades: a fresh view sees the same state.
        assert not network.channels[((0, 0), Direction.EAST)].up
        network.send_from((0, 0), Direction.EAST, "ping", None)
        assert network.channels[((0, 0), Direction.EAST)].messages_dropped == 1
        assert network.messages_dropped_total == 1

    def test_external_channel_send_counts_into_totals(self):
        mesh = Mesh2D(2, 1)
        network = MeshNetwork(mesh, Engine(), _Sink)
        channel = network.channels[((0, 0), Direction.EAST)]
        channel.send(Message(src=(0, 0), dst=(1, 0), kind="x"))
        assert network.messages_carried_total == 1
        assert channel.messages_carried == 1


# ----------------------------------------------------------------------
# Bounded PathPolicy cache
# ----------------------------------------------------------------------
class TestPathPolicyCacheBound:
    def test_cache_is_bounded_lru(self):
        calls = []

        def route(source, dest):
            calls.append((source, dest))
            return (source, dest)

        policy = PathPolicy(route, ArtifactCache(maxsize=4))
        for i in range(10):
            policy.path_for((0, 0), (i, i))
        assert len(calls) == 10
        assert len(policy._cache) == 4
        # Recent entries hit; evicted entries rebuild.
        policy.path_for((0, 0), (9, 9))
        assert len(calls) == 10
        policy.path_for((0, 0), (0, 0))
        assert len(calls) == 11

    def test_default_cache_is_bounded(self):
        policy = PathPolicy(lambda s, d: (s, d))
        assert policy._cache.maxsize == 1024


class TestPathPolicyInvalidation:
    def test_stale_paths_dropped_when_fault_set_changes(self):
        """A live fault landing on a memoised route must not keep being
        served: invalidate() flushes the cache and the rebuilt path
        avoids the new fault."""
        from repro.routing.detour import DetourRouter

        mesh = Mesh2D(9, 9)
        faults: list = []

        def route(source, dest):
            return DetourRouter(mesh, build_faulty_blocks(mesh, faults)).route(
                source, dest
            )

        policy = PathPolicy(route)
        path = policy.path_for((0, 4), (8, 4))
        victim = path.nodes[len(path.nodes) // 2]
        faults.append(victim)
        # Without invalidation the cache still serves the stale route
        # straight through the fault -- that is the hazard.
        assert victim in policy.path_for((0, 4), (8, 4)).nodes
        policy.invalidate()
        fresh = policy.path_for((0, 4), (8, 4))
        assert victim not in fresh.nodes
        assert len(policy._cache) == 1

    def test_invalidate_on_empty_cache_is_harmless(self):
        policy = PathPolicy(lambda s, d: (s, d))
        policy.invalidate()
        assert len(policy._cache) == 0


class TestPathPolicyGenerations:
    """Per-entry staleness: a fault event only drops the routes it can
    actually touch (satellite of the incremental-maintenance engine)."""

    def _tracking_policy(self, mesh, faults):
        from repro.routing.detour import DetourRouter

        calls = []

        def route(source, dest):
            calls.append((source, dest))
            return DetourRouter(mesh, build_faulty_blocks(mesh, faults)).route(
                source, dest
            )

        return PathPolicy(route), calls

    def test_unaffected_route_survives_distant_fault(self):
        """The regression the issue names: a cached (s, d) route far from
        an injected fault must survive the event (revalidated, not
        rebuilt), while a route through the affected window is rebuilt."""
        from repro.faults.incremental import IncrementalFaultEngine

        mesh = Mesh2D(16, 16)
        faults: list = []
        policy, calls = self._tracking_policy(mesh, faults)
        near = policy.path_for((0, 4), (8, 4))
        policy.path_for((15, 0), (15, 15))  # distant: hugs the far column
        assert len(calls) == 2

        engine = IncrementalFaultEngine(mesh)
        victim = near.nodes[len(near.nodes) // 2]
        faults.append(victim)
        report = engine.inject(victim)
        policy.note_fault_event(report.affected_rect, report.generation)
        assert policy.generation == 1

        # The distant route survives without a rebuild...
        policy.path_for((15, 0), (15, 15))
        assert len(calls) == 2
        assert policy._cache.revalidated == 1
        # ...while the route through the fault is recomputed and avoids it.
        fresh = policy.path_for((0, 4), (8, 4))
        assert len(calls) == 3
        assert victim not in fresh.nodes

    def test_windowless_event_marks_everything_stale(self):
        policy, calls = self._tracking_policy(Mesh2D(8, 8), [])
        policy.path_for((0, 0), (7, 7))
        policy.note_fault_event()  # no affected window known
        policy.path_for((0, 0), (7, 7))
        assert len(calls) == 2

    def test_history_overflow_forces_rebuild(self):
        from repro.mesh.geometry import Rect
        from repro.simulator.traffic import FAULT_EVENT_HISTORY

        policy, calls = self._tracking_policy(Mesh2D(8, 8), [])
        policy.path_for((0, 0), (0, 7))
        # Flood the event history with windows that never touch the route;
        # once the record of an intervening event is lost, the entry can
        # no longer prove it survived and must rebuild.
        for _ in range(FAULT_EVENT_HISTORY + 1):
            policy.note_fault_event(Rect(7, 7, 0, 0))
        policy.path_for((0, 0), (0, 7))
        assert len(calls) == 2

    def test_invalidate_still_flushes_everything(self):
        policy, calls = self._tracking_policy(Mesh2D(8, 8), [])
        policy.path_for((0, 0), (7, 7))
        policy.invalidate()
        policy.path_for((0, 0), (7, 7))
        assert len(calls) == 2
