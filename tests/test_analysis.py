"""Unit tests for the analytical models and statistics helpers."""

import numpy as np
import pytest

from repro.analysis.affected_rows import (
    count_affected_columns,
    count_affected_rows,
    expected_affected_rows,
)
from repro.analysis.statistics import mean_and_ci, proportion_ci
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.topology import Mesh2D


class TestExpectedAffectedRows:
    def test_boundary_values(self):
        assert expected_affected_rows(100, 0) == 0.0
        assert 0.9 < expected_affected_rows(100, 1) <= 1.0
        assert expected_affected_rows(100, 10**9) == 100.0

    def test_monotone_in_k(self):
        values = [expected_affected_rows(200, k) for k in range(0, 201, 10)]
        assert values == sorted(values)
        assert all(v <= 200 for v in values)

    def test_paper_anchor_points(self):
        """Paper: ~20% affected at k=50, ~40% at k=100, ~60% at k=200."""
        n = 200
        assert expected_affected_rows(n, 50) / n == pytest.approx(0.20, abs=0.04)
        assert expected_affected_rows(n, 100) / n == pytest.approx(0.40, abs=0.05)
        assert expected_affected_rows(n, 200) / n == pytest.approx(0.60, abs=0.06)

    def test_sublinear_growth(self):
        """Hits get rarer as rows fill up: strictly concave growth."""
        n = 200
        first = expected_affected_rows(n, 50)
        second = expected_affected_rows(n, 100) - first
        third = expected_affected_rows(n, 150) - first - second
        assert first > second > third > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_affected_rows(0, 5)
        with pytest.raises(ValueError):
            expected_affected_rows(10, -1)

    def test_matches_simulation(self, rng):
        """Analytical vs empirical affected-row fraction (Figure 7's point)."""
        n, k, trials = 100, 60, 40
        mesh = Mesh2D(n, n)
        counts = []
        for _ in range(trials):
            blocks = build_faulty_blocks(mesh, uniform_faults(mesh, k, rng))
            counts.append(count_affected_rows(blocks.unusable))
        empirical = sum(counts) / trials
        assert empirical == pytest.approx(expected_affected_rows(n, k), rel=0.1)


class TestAffectedCounts:
    def test_counts_match_hand_example(self):
        mesh = Mesh2D(8, 8)
        blocks = build_faulty_blocks(mesh, [(1, 1), (2, 2), (5, 1)])
        # Diagonal pair fills [1:2, 1:2]; single at (5, 1).
        assert count_affected_rows(blocks.unusable) == 2  # rows 1, 2
        assert count_affected_columns(blocks.unusable) == 3  # columns 1, 2, 5

    def test_theorem2_model_equivalence(self, rng):
        """Disabled nodes create no new affected rows/columns: the counts
        agree between the faulty block and MCC models (Theorem 2's remark)."""
        mesh = Mesh2D(40, 40)
        for _ in range(10):
            faults = uniform_faults(mesh, 30, rng)
            blocks = build_faulty_blocks(mesh, faults)
            mccs = build_mccs(mesh, faults, MCCType.TYPE_ONE)
            faulty_grid = blocks.faulty
            assert count_affected_rows(blocks.unusable) == count_affected_rows(faulty_grid)
            assert count_affected_rows(mccs.blocked) == count_affected_rows(faulty_grid)
            assert count_affected_columns(blocks.unusable) == count_affected_columns(
                faulty_grid
            )


class TestStatistics:
    def test_mean_and_ci(self):
        estimate = mean_and_ci([1.0, 2.0, 3.0, 4.0])
        assert estimate.value == pytest.approx(2.5)
        assert estimate.low < 2.5 < estimate.high
        assert estimate.samples == 4

    def test_mean_single_sample(self):
        estimate = mean_and_ci([3.0])
        assert estimate.value == 3.0
        assert estimate.half_width == float("inf")

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_ci([])

    def test_proportion_point_estimate_is_raw(self):
        assert proportion_ci(90, 90).value == 1.0
        assert proportion_ci(0, 90).value == 0.0
        assert proportion_ci(45, 90).value == pytest.approx(0.5)

    def test_proportion_interval_shrinks_with_trials(self):
        wide = proportion_ci(5, 10)
        narrow = proportion_ci(500, 1000)
        assert narrow.half_width < wide.half_width

    def test_proportion_invalid(self):
        with pytest.raises(ValueError):
            proportion_ci(1, 0)
        with pytest.raises(ValueError):
            proportion_ci(11, 10)
        with pytest.raises(ValueError):
            proportion_ci(-1, 10)

    def test_estimate_str(self):
        assert "n=4" in str(mean_and_ci([1.0, 2.0, 3.0, 4.0]))
