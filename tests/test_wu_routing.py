"""Integration tests for Wu's protocol: the Theorem 1/1a/1b/1c guarantees.

These are the paper's central correctness claims: with only boundary
information at the nodes, a safe source's packet is delivered minimally;
the extensions' two-phase routings deliver with the promised lengths.
"""

import pytest

from repro.core.boundaries import BoundaryMap
from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.pivots import recursive_center_pivots
from repro.core.routing import WuRouter, route_with_decision
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D
from repro.routing.router import RoutingError, x_first_tie_breaker


def _setup(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    return blocks, levels, WuRouter(mesh, blocks)


class TestSingleBlockScenarios:
    def test_stays_south_for_r6_destination(self):
        mesh = Mesh2D(12, 12)
        blocks, levels, router = _setup(mesh, [(4, 4), (5, 5)])  # block [4:5, 4:5]
        source, dest = (0, 0), (9, 5)
        assert is_safe(levels, source, dest)
        path = router.route(source, dest)
        assert path.is_minimal and path.avoids(blocks.unusable)
        # All visited nodes in the block's column range stay below it.
        for x, y in path:
            if 4 <= x <= 5:
                assert y <= 3

    def test_stays_west_for_r4_destination(self):
        mesh = Mesh2D(12, 12)
        blocks, levels, router = _setup(mesh, [(4, 4), (5, 5)])
        source, dest = (0, 0), (5, 9)
        assert is_safe(levels, source, dest)
        path = router.route(source, dest)
        assert path.is_minimal and path.avoids(blocks.unusable)
        for x, y in path:
            if 4 <= y <= 5:
                assert x <= 3

    def test_x_first_tie_breaker_also_delivers(self):
        """The protocol is adaptive: any tie-breaker respects the rules."""
        mesh = Mesh2D(12, 12)
        blocks, levels, _ = _setup(mesh, [(4, 4), (5, 5)])
        router = WuRouter(mesh, blocks, tie_breaker=x_first_tie_breaker)
        for dest in [(9, 5), (5, 9), (9, 9), (3, 9), (9, 3)]:
            assert is_safe(levels, (0, 0), dest)
            path = router.route((0, 0), dest)
            assert path.is_minimal and path.avoids(blocks.unusable)

    def test_all_four_quadrants(self):
        mesh = Mesh2D(13, 13)
        blocks, levels, router = _setup(mesh, [(6, 6)])
        center = (6, 0)
        for dest in [(12, 5), (0, 5)]:
            assert is_safe(levels, center, dest)
            path = router.route(center, dest)
            assert path.is_minimal and path.avoids(blocks.unusable)
        # And from the far corner heading South-West.
        blocks2, levels2, router2 = _setup(mesh, [(6, 6), (7, 7)])
        source, dest = (12, 12), (2, 5)
        if is_safe(levels2, source, dest):
            path = router2.route(source, dest)
            assert path.is_minimal and path.avoids(blocks2.unusable)


class TestTheorem1Randomized:
    """Safe source => Wu's protocol delivers minimally (both tie-breakers,
    randomized fault patterns, all quadrants)."""

    @pytest.mark.parametrize("num_faults", [10, 30, 60])
    def test_safe_pairs_route_minimally(self, rng, num_faults):
        mesh = Mesh2D(30, 30)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks, levels, router = _setup(mesh, faults)
            routed = 0
            for _ in range(150):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                if not is_safe(levels, source, dest):
                    continue
                path = router.route(source, dest)
                assert path.is_minimal
                assert path.avoids(blocks.unusable)
                routed += 1
            assert routed > 0


class TestTwoPhaseRoutings:
    @pytest.mark.parametrize("num_faults", [20, 50])
    def test_extension_decisions_are_routable(self, rng, num_faults):
        mesh = Mesh2D(30, 30)
        region = Rect(15, 29, 15, 29)
        pivots = recursive_center_pivots(region, 3)
        for _ in range(3):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks, levels, router = _setup(mesh, faults)
            counts = {kind: 0 for kind in DecisionKind}
            for _ in range(120):
                source = (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
                dest = (int(rng.integers(15, 30)), int(rng.integers(15, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                for decision in (
                    extension1_decision(mesh, levels, blocks.unusable, source, dest),
                    extension2_decision(mesh, levels, source, dest, 1),
                    extension3_decision(mesh, levels, blocks.unusable, source, dest, pivots),
                ):
                    if decision.kind is DecisionKind.UNSAFE:
                        continue
                    path = route_with_decision(router, decision, blocked=blocks.unusable)
                    counts[decision.kind] += 1
                    if decision.ensures_minimal:
                        assert path.is_minimal
                    else:
                        assert path.is_sub_minimal
            # The randomized scenarios must actually exercise the machinery.
            assert counts[DecisionKind.SOURCE_SAFE] > 0

    def test_unsafe_decision_rejected(self):
        mesh = Mesh2D(10, 10)
        blocks, levels, router = _setup(mesh, [(5, 0), (0, 5)])
        decision = extension1_decision(mesh, levels, blocks.unusable, (0, 0), (9, 9))
        if decision.kind is DecisionKind.UNSAFE:
            with pytest.raises(RoutingError):
                route_with_decision(router, decision)


class TestSharedBoundaryMap:
    def test_router_accepts_prebuilt_map(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        bmap = BoundaryMap.for_blocks(blocks)
        router = WuRouter(mesh, blocks, boundary_map=bmap)
        assert router.boundaries is bmap
        path = router.route((0, 0), (9, 5))
        assert path.is_minimal
