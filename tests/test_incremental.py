"""Incremental fault maintenance vs the from-scratch builders.

The delta-maintenance engine (:mod:`repro.faults.incremental`) claims
bit-identical equivalence with :func:`build_faulty_blocks`,
:func:`compute_safety_levels`, and :func:`build_mccs` after every fault
arrival/revival.  This suite proves it:

- exhaustively on small meshes (every single fault, every ordered
  two-fault arrival, plus revivals in both orders);
- on long seeded random inject/revive schedules across random mesh
  sizes, with the final state additionally cross-checked through the
  ``batch_is_safe`` / ``batch_minimal_path_exists`` oracles;
- and on the wiring: generation counters, affected-window accounting,
  and the event-stream generator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import batch_is_safe
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import batch_minimal_path_exists
from repro.faults.incremental import IncrementalFaultEngine
from repro.faults.injection import injection_events
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.topology import Mesh2D

MCC_TYPES = (MCCType.TYPE_ONE, MCCType.TYPE_TWO)


def assert_matches_full(engine: IncrementalFaultEngine, mcc_types=()) -> None:
    """Engine state must be bit-identical to a from-scratch rebuild."""
    mesh = engine.mesh
    faults = engine.faults
    reference = build_faulty_blocks(mesh, faults)
    snapshot = engine.block_set()
    assert np.array_equal(snapshot.faulty, reference.faulty)
    assert np.array_equal(snapshot.unusable, reference.unusable)
    assert np.array_equal(snapshot.block_id, reference.block_id)
    assert snapshot.blocks == reference.blocks

    want_levels = compute_safety_levels(mesh, reference.unusable)
    got_levels = engine.safety_levels()
    for grid in ("east", "south", "west", "north"):
        assert np.array_equal(getattr(got_levels, grid), getattr(want_levels, grid))

    for mcc_type in mcc_types:
        want_mccs = build_mccs(mesh, faults, mcc_type)
        got_mccs = engine.mcc_set(mcc_type)
        assert np.array_equal(got_mccs.faulty, want_mccs.faulty)
        assert np.array_equal(got_mccs.status, want_mccs.status)
        assert np.array_equal(got_mccs.blocked, want_mccs.blocked)
        assert np.array_equal(got_mccs.component_id, want_mccs.component_id)
        assert got_mccs.components == want_mccs.components


# ----------------------------------------------------------------------
# Exhaustive small-mesh equivalence
# ----------------------------------------------------------------------
class TestExhaustiveSmallMesh:
    def test_every_single_fault_and_revival_6x6(self):
        mesh = Mesh2D(6, 6)
        for coord in mesh.nodes():
            engine = IncrementalFaultEngine(mesh, mcc_types=MCC_TYPES)
            engine.inject(coord)
            assert_matches_full(engine, MCC_TYPES)
            engine.revive(coord)
            assert_matches_full(engine, MCC_TYPES)
            assert not engine.faults
        assert engine.full_rebuilds == 0

    def test_every_two_fault_arrival_order_with_revivals_4x4(self):
        """All 240 ordered pairs on a 4x4 mesh, checked after each of the
        two arrivals and after reviving in arrival order -- covers every
        merge/adjacency geometry two faults can produce."""
        mesh = Mesh2D(4, 4)
        nodes = list(mesh.nodes())
        rebuilds = 0
        for first in nodes:
            for second in nodes:
                if first == second:
                    continue
                engine = IncrementalFaultEngine(mesh, mcc_types=MCC_TYPES)
                engine.inject(first)
                assert_matches_full(engine, MCC_TYPES)
                engine.inject(second)
                assert_matches_full(engine, MCC_TYPES)
                engine.revive(first)
                assert_matches_full(engine, MCC_TYPES)
                engine.revive(second)
                assert_matches_full(engine, MCC_TYPES)
                rebuilds += engine.full_rebuilds
        assert rebuilds == 0

    def test_figure1_block_reached_incrementally(self, figure1_blocks):
        """The paper's Figure 1 pattern formed one arrival at a time ends
        bit-identical to the block built from the full fault set."""
        mesh = figure1_blocks.mesh
        engine = IncrementalFaultEngine(mesh)
        for coord in figure1_blocks.blocks[0].faulty:
            engine.inject(coord)
        snapshot = engine.block_set()
        assert snapshot.blocks == figure1_blocks.blocks
        assert np.array_equal(snapshot.unusable, figure1_blocks.unusable)

    def test_inject_validates(self):
        engine = IncrementalFaultEngine(Mesh2D(4, 4))
        engine.inject((1, 1))
        with pytest.raises(ValueError, match="already faulty"):
            engine.inject((1, 1))
        with pytest.raises(ValueError, match="not faulty"):
            engine.revive((2, 2))
        with pytest.raises(ValueError):
            engine.inject((9, 9))


# ----------------------------------------------------------------------
# Seeded property test: long random schedules
# ----------------------------------------------------------------------
class TestRandomSchedules:
    def test_200_event_schedules_random_meshes(self, rng):
        """200-event random inject/revive schedules on random mesh sizes:
        the engine stays bit-identical to full rebuilds at checkpoints and
        the final state agrees with the batch oracles."""
        for _ in range(4):
            n = int(rng.integers(5, 17))
            m = int(rng.integers(5, 17))
            mesh = Mesh2D(n, m)
            engine = IncrementalFaultEngine(mesh)
            alive: list = []
            events = 0
            while events < 200:
                # Keep the live-fault density below a third of the mesh so
                # the final state always leaves free nodes for the oracles.
                revive = bool(alive) and (
                    rng.random() < 0.45 or len(alive) >= mesh.size // 3
                )
                if revive:
                    coord = alive.pop(int(rng.integers(len(alive))))
                    report = engine.revive(coord)
                    assert report.event == "revive"
                else:
                    while True:
                        coord = (int(rng.integers(n)), int(rng.integers(m)))
                        if coord not in alive:
                            break
                    report = engine.inject(coord)
                    assert report.event == "inject"
                    alive.append(coord)
                events += 1
                assert report.generation == events
                assert report.affected_cells >= 1
                assert 0.0 < report.affected_fraction <= 1.0
                if events % 40 == 0:
                    assert_matches_full(engine)
            assert engine.full_rebuilds == 0
            assert sorted(alive) == engine.faults

            # Final-state oracle cross-check (Definition 3 / Theorem 1).
            reference = build_faulty_blocks(mesh, sorted(alive))
            levels = engine.safety_levels()
            free = np.argwhere(~reference.unusable)
            assert len(free) >= 2
            full_levels = compute_safety_levels(mesh, reference.unusable)
            for _ in range(8):
                row = int(rng.integers(len(free)))
                source = (int(free[row, 0]), int(free[row, 1]))
                dests = free[rng.integers(len(free), size=16)]
                got = batch_is_safe(levels, source, dests)
                want = batch_is_safe(full_levels, source, dests)
                assert np.array_equal(got, want)
                reachable = batch_minimal_path_exists(
                    reference.unusable, source, dests
                )
                # Theorem 1: a safe verdict guarantees a minimal path.
                assert not np.any(got & ~reachable)

    def test_injection_events_stream_is_replayable(self, rng):
        mesh = Mesh2D(12, 12)
        events = injection_events(mesh, 30, rng, revive_fraction=0.3)
        injects = [c for action, c in events if action == "inject"]
        assert len(injects) == len(set(injects)) == 30
        engine = IncrementalFaultEngine(mesh)
        alive = set()
        for action, coord in events:
            engine.apply(action, coord)
            if action == "inject":
                alive.add(coord)
            else:
                assert coord in alive  # revives only target live faults
                alive.discard(coord)
        assert engine.faults == sorted(alive)
        assert_matches_full(engine)

    def test_rejects_unknown_event_and_bad_fraction(self, rng):
        engine = IncrementalFaultEngine(Mesh2D(4, 4))
        with pytest.raises(ValueError, match="unknown fault event"):
            engine.apply("explode", (1, 1))
        with pytest.raises(ValueError, match="revive_fraction"):
            injection_events(Mesh2D(4, 4), 2, rng, revive_fraction=1.5)


# ----------------------------------------------------------------------
# Affected-window accounting
# ----------------------------------------------------------------------
class TestAffectedAccounting:
    def test_isolated_fault_touches_one_cell(self):
        mesh = Mesh2D(32, 32)
        engine = IncrementalFaultEngine(mesh)
        report = engine.inject((5, 5))
        assert report.affected_cells == 1
        assert report.affected_rect.area == 1
        assert report.affected_fraction == 1 / mesh.size
        assert not report.full_rebuild

    def test_merge_window_covers_merged_block(self):
        mesh = Mesh2D(10, 10)
        engine = IncrementalFaultEngine(mesh)
        engine.inject((2, 2))
        engine.inject((2, 4))
        assert len(engine.block_set().blocks) == 2
        # (2, 3) bridges the two 1x1 blocks into one 1x3 block.
        report = engine.inject((2, 3))
        [block] = engine.block_set().blocks
        assert report.affected_rect == block.rect
        assert block.rect.area == 3
        assert report.affected_cells == 1  # only (2, 3) changed status
        assert report.generation == 3
        assert_matches_full(engine)

    def test_fault_on_disabled_cell_is_one_cell_event(self):
        mesh = Mesh2D(8, 8)
        engine = IncrementalFaultEngine(mesh)
        for coord in ((2, 2), (2, 4), (1, 3), (3, 3)):
            engine.inject(coord)
        assert engine.unusable[2, 3] and not engine.faulty[2, 3]
        report = engine.inject((2, 3))
        assert report.affected_cells == 1
        assert report.affected_rect.area == 1
        assert_matches_full(engine)

    def test_hot_counters_flow_through_profiler(self):
        from repro.obs.prof import Profiler, use_profiler

        mesh = Mesh2D(8, 8)
        engine = IncrementalFaultEngine(mesh)
        with use_profiler(Profiler()) as profiler:
            engine.inject((1, 1))
            engine.inject((6, 6))
            engine.revive((1, 1))
        assert profiler.hot["incr.events"] == 3
        assert profiler.hot["incr.affected_cells"] >= 3
        assert profiler.hot["incr.full_rebuilds"] == 0
