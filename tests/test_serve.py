"""The serving layer: snapshot fencing, degradation tiers, admission
control, deadlines, and the HTTP front end."""

import asyncio
import json

import numpy as np
import pytest

from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.parallel.cache import StaleArtifactError
from repro.serve import (
    QueryError,
    QueryPipeline,
    RoutingService,
    ServeApp,
    ServiceBreaker,
    default_breaker_rules,
    run_qps_sweep,
)
from tests.promtext import parse


def _service(side=12, faults=6, seed=3, **kwargs):
    mesh = Mesh2D(side, side)
    coords = uniform_faults(mesh, faults, np.random.default_rng(seed),
                            forbidden={mesh.center})
    return RoutingService(mesh, coords, **kwargs)


class TestRoutingService:
    def test_fault_free_mesh_is_source_safe_everywhere(self):
        service = RoutingService(Mesh2D(8, 8))
        answer = service.answer((0, 0), (7, 7))
        assert answer.verdict == "source-safe"
        assert answer.strategy == "definition3"
        assert answer.routable and answer.minimal and not answer.degraded
        assert answer.generation == 0 and answer.staleness == 0
        assert answer.path is not None
        assert len(answer.path) == answer.distance + 1
        assert answer.path[0] == (0, 0) and answer.path[-1] == (7, 7)

    def test_witness_avoids_blocked_nodes(self):
        service = _service()
        snapshot = service.snapshot()
        usable = [
            (x, y) for x in range(12) for y in range(12)
            if not snapshot.blocked[x, y]
        ]
        served = 0
        for source in usable[:6]:
            for dest in usable[-6:]:
                answer = service.answer(source, dest)
                if answer.path is None:
                    continue
                served += 1
                assert not any(snapshot.blocked[node] for node in answer.path)
                if answer.minimal:
                    assert len(answer.path) == answer.distance + 1
        assert served > 0

    def test_blocked_endpoint_verdict(self):
        service = _service()
        blocked = service.snapshot().blocked
        coord = next(
            (x, y) for x in range(12) for y in range(12) if blocked[x, y]
        )
        answer = service.answer(coord, (0, 0))
        assert answer.verdict == "blocked-endpoint"
        assert not answer.routable and answer.path is None

    def test_malformed_queries_raise(self):
        service = _service()
        with pytest.raises(QueryError, match="model"):
            service.answer((0, 0), (1, 1), model="quantum")
        with pytest.raises(QueryError, match="outside"):
            service.answer((0, 0), (99, 99))

    def test_staleness_fencing_and_refresh(self):
        service = _service(auto_refresh=False)
        victim = next(
            (x, y) for x in range(12) for y in range(12)
            if not service.engine.unusable[x, y] and (x, y) != (0, 0)
        )
        service.apply_fault("crash", victim)
        answer = service.answer((0, 0), (11, 11))
        assert answer.staleness == 1
        assert answer.generation == 0  # answered from the old snapshot
        with pytest.raises(StaleArtifactError):
            service.answer((0, 0), (11, 11), max_staleness=0)
        service.refresh()
        answer = service.answer((0, 0), (11, 11), max_staleness=0)
        assert answer.staleness == 0 and answer.generation == 1

    def test_refresh_is_noop_when_current(self):
        service = _service()
        before = service.refreshes
        assert service.refresh() is service.snapshot()
        assert service.refreshes == before

    def test_degraded_refresh_never_downgrades_same_generation(self):
        service = _service()
        full = service.snapshot()
        assert full.mcc_levels is not None
        assert service.refresh(include_mcc=False) is full  # no-op: still capable

    def test_mcc_answers_and_degraded_fallback(self):
        service = _service()
        answer = service.answer((0, 0), (11, 11), model="mcc")
        assert answer.model == "mcc" and answer.model_used == "mcc"
        assert answer.path is None  # witnesses are block-model only
        degraded = service.answer((0, 0), (11, 11), model="mcc", degraded=True)
        assert degraded.model_used == "block"
        assert degraded.degraded

    def test_mcc_falls_back_when_snapshot_is_degraded(self):
        service = _service(auto_refresh=False)
        victim = next(
            (x, y) for x in range(12) for y in range(12)
            if not service.engine.unusable[x, y]
        )
        service.apply_fault("crash", victim)
        service.refresh(include_mcc=False)
        assert service.degraded_refreshes == 1
        answer = service.answer((0, 0), (11, 11), model="mcc")
        assert answer.model_used == "block" and answer.degraded
        # A full refresh of the *same* generation restores the MCC tier.
        service.refresh()
        answer = service.answer((0, 0), (11, 11), model="mcc")
        assert answer.model_used == "mcc" and not answer.degraded

    def test_witness_cache_revalidates_across_generations(self):
        # A crash in the far corner leaves both the decision and the
        # served path for a row-0 pair untouched, so the cached witness
        # must survive revalidation instead of rebuilding.
        service = RoutingService(Mesh2D(12, 12))
        first = service.answer((0, 0), (5, 0))
        assert first.verdict == "source-safe" and first.path is not None
        service.apply_fault("crash", (11, 11))
        again = service.answer((0, 0), (5, 0))
        assert again.generation == 1
        assert again.verdict == "source-safe"
        assert again.path == first.path
        assert service._witnesses.stats()["revalidated"] >= 1

    def test_jsonable_round_trips(self):
        answer = _service().answer((0, 0), (11, 11))
        payload = json.loads(json.dumps(answer.jsonable()))
        assert payload["source"] == [0, 0]
        assert payload["verdict"] == answer.verdict
        assert payload["staleness"] == 0


class TestServiceBreaker:
    def test_trips_on_queue_runaway_and_recovers(self):
        breaker = ServiceBreaker(recovery_ticks=2)
        healthy = {"serve.queue_depth": 0.1, "serve.arrived": 10.0,
                   "serve.shed": 0.0, "serve.staleness": 0.0}
        hot = dict(healthy, **{"serve.queue_depth": 0.95})
        assert breaker.observe(healthy) is False
        assert breaker.observe(hot) is False  # for_ticks=2: not yet
        assert breaker.observe(hot) is True
        assert breaker.trips == 1
        assert breaker.observe(healthy) is True  # hysteresis
        assert breaker.observe(healthy) is False
        assert breaker.state()["open"] is False

    def test_latches_while_any_rule_fires(self):
        breaker = ServiceBreaker()
        stale = {"serve.queue_depth": 0.0, "serve.arrived": 5.0,
                 "serve.shed": 0.0, "serve.staleness": 20.0}
        breaker.observe(stale)
        assert breaker.observe(stale) is True
        assert "serve-staleness" in breaker.state()["active"]

    def test_rejects_nonpositive_recovery(self):
        with pytest.raises(ValueError, match="recovery_ticks"):
            ServiceBreaker(recovery_ticks=0)

    def test_default_rules_cover_the_slo_axes(self):
        names = {rule.name for rule in default_breaker_rules()}
        assert names == {"serve-queue-runaway", "serve-shed-slo",
                         "serve-staleness"}


class TestQueryPipeline:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_submit_answers_and_counts(self):
        async def scenario():
            pipeline = QueryPipeline(_service())
            await pipeline.start()
            try:
                result = await pipeline.submit((0, 0), (11, 11))
            finally:
                await pipeline.drain()
            return pipeline, result

        pipeline, result = self._run(scenario())
        assert result.ok
        assert result.answer is not None and result.answer.generation == 0
        assert result.latency_s >= 0.0
        assert pipeline.counters["served"] == 1
        assert pipeline.stats()["shed_fraction"] == 0.0

    def test_queue_full_sheds_immediately(self):
        async def scenario():
            pipeline = QueryPipeline(_service(), queue_limit=1)
            # Not started: fill the queue by hand so no worker drains it.
            pipeline._queue = asyncio.Queue(1)
            pipeline._queue.put_nowait(None)
            pipeline.accepting = True
            return pipeline, await pipeline.submit((0, 0), (1, 1))

        pipeline, result = self._run(scenario())
        assert result.status == "overloaded" and result.error == "queue full"
        assert pipeline.counters["shed_overload"] == 1

    def test_expired_requests_are_shed_not_answered(self):
        async def scenario():
            pipeline = QueryPipeline(_service())
            await pipeline.start()
            try:
                return pipeline, await pipeline.submit(
                    (0, 0), (11, 11), deadline_s=0.0
                )
            finally:
                await pipeline.drain()

        pipeline, result = self._run(scenario())
        assert result.status == "deadline_exceeded"
        assert pipeline.counters["shed_deadline"] == 1

    def test_bad_request_surfaces_cleanly(self):
        async def scenario():
            pipeline = QueryPipeline(_service())
            await pipeline.start()
            try:
                return await pipeline.submit((0, 0), (99, 99))
            finally:
                await pipeline.drain()

        result = self._run(scenario())
        assert result.status == "bad_request"
        assert "outside" in result.error

    def test_deadline_exhaustion_serves_stale_not_error(self):
        async def scenario():
            # Refresher effectively disabled: every retry finds the
            # snapshot still stale, so the deadline budget runs out and
            # the stale tier answers.
            pipeline = QueryPipeline(
                _service(), max_staleness=0, deadline_s=0.02,
                refresh_delay_s=60.0, heartbeat_s=60.0,
            )
            await pipeline.start()
            victim = next(
                (x, y) for x in range(12) for y in range(12)
                if not pipeline.service.engine.unusable[x, y]
            )
            pipeline.ingest_fault("crash", victim)
            try:
                return pipeline, await pipeline.submit((0, 0), (11, 11))
            finally:
                await pipeline.drain()

        pipeline, result = self._run(scenario())
        assert result.ok
        assert result.retries >= 1
        assert result.answer.staleness == 1
        assert result.answer.degraded
        assert pipeline.counters["stale_served"] == 1

    def test_refresher_catches_up_for_fresh_answers(self):
        async def scenario():
            pipeline = QueryPipeline(
                _service(), max_staleness=0, refresh_delay_s=0.0,
            )
            await pipeline.start()
            victim = next(
                (x, y) for x in range(12) for y in range(12)
                if not pipeline.service.engine.unusable[x, y]
            )
            pipeline.ingest_fault("crash", victim)
            try:
                return await pipeline.submit((0, 0), (11, 11))
            finally:
                await pipeline.drain()

        result = self._run(scenario())
        assert result.ok
        assert result.answer.staleness == 0
        assert result.answer.generation == 1

    def test_open_breaker_forces_degraded_answers(self):
        async def scenario():
            pipeline = QueryPipeline(_service(), heartbeat_s=60.0)
            pipeline.breaker.open = True
            await pipeline.start()
            try:
                return await pipeline.submit((0, 0), (11, 11), model="mcc")
            finally:
                await pipeline.drain()

        result = self._run(scenario())
        assert result.ok
        assert result.answer.degraded
        assert result.answer.model_used == "block"
        assert result.answer.path is None

    def test_drain_stops_admission(self):
        async def scenario():
            pipeline = QueryPipeline(_service())
            await pipeline.start()
            assert await pipeline.drain() is True
            return pipeline, await pipeline.submit((0, 0), (1, 1))

        pipeline, result = self._run(scenario())
        assert result.status == "overloaded" and result.error == "draining"
        assert not pipeline.accepting

    def test_pulse_requests_full_snapshot_after_recovery(self):
        async def scenario():
            pipeline = QueryPipeline(_service(auto_refresh=False),
                                     heartbeat_s=60.0)
            await pipeline.start()
            try:
                victim = next(
                    (x, y) for x in range(12) for y in range(12)
                    if not pipeline.service.engine.unusable[x, y]
                )
                pipeline.service.apply_fault("crash", victim)
                pipeline.service.refresh(include_mcc=False)
                pipeline._dirty.clear()
                assert pipeline.pulse() is False  # healthy, breaker closed
                return pipeline._dirty.is_set()
            finally:
                await pipeline.drain()

        assert self._run(scenario()) is True

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError, match="queue_limit"):
            QueryPipeline(_service(), queue_limit=0)
        with pytest.raises(ValueError, match="workers"):
            QueryPipeline(_service(), workers=0)


class TestServeApp:
    def _request(self, app_coro_factory):
        return asyncio.run(app_coro_factory())

    @staticmethod
    async def _get(host, port, target, method="GET"):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        headers = dict(
            line.split(": ", 1)
            for line in head.decode("latin-1").split("\r\n")[1:]
            if ": " in line
        )
        return status, body.decode("utf-8"), headers

    def test_query_fault_health_metrics_cycle(self):
        async def scenario():
            service = _service()
            pipeline = QueryPipeline(service)
            app = ServeApp(service, pipeline)
            await app.start()
            host, port = app.host, app.port
            try:
                results = {}
                results["readyz"] = await self._get(host, port, "/readyz")
                results["query"] = await self._get(
                    host, port, "/query?source=0,0&dest=11,11")
                results["bad"] = await self._get(
                    host, port, "/query?source=zap&dest=0,0")
                results["fault"] = await self._get(
                    host, port, "/fault?event=crash&coord=6,6", method="POST")
                results["conflict"] = await self._get(
                    host, port, "/fault?event=crash&coord=6,6", method="POST")
                results["healthz"] = await self._get(host, port, "/healthz")
                results["metrics"] = await self._get(host, port, "/metrics")
                results["missing"] = await self._get(host, port, "/nope")
                return results
            finally:
                await app.shutdown()

        results = self._request(scenario)
        assert results["readyz"][0] == 200
        status, body, headers = results["query"]
        assert status == 200
        assert int(headers["Content-Length"]) == len(body.encode("utf-8"))
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert {"verdict", "strategy", "generation", "staleness",
                "degraded"} <= set(payload["answer"])
        assert results["bad"][0] == 400
        fault = json.loads(results["fault"][1])
        assert results["fault"][0] == 200 and fault["generation"] == 1
        assert results["conflict"][0] == 409
        health = json.loads(results["healthz"][1])
        assert results["healthz"][0] == 200 and health["status"] == "ok"
        families = parse(results["metrics"][1])
        assert "repro_serve_requests_total" in families
        assert "repro_serve_generation" in families
        assert results["missing"][0] == 404

    def test_shutdown_notice_flips_readyz_before_close(self):
        async def scenario():
            service = _service()
            app = ServeApp(service, QueryPipeline(service), notice_s=0.3)
            await app.start()
            host, port = app.host, app.port
            shutdown = asyncio.create_task(app.shutdown())
            await asyncio.sleep(0.05)  # inside the notice window
            status, body, _ = await self._get(host, port, "/readyz")
            await shutdown
            return status, json.loads(body)

        status, payload = self._request(scenario)
        assert status == 503
        assert payload["status"] == "draining"


class TestLoadGenerator:
    def test_mini_sweep_report_shape(self):
        report = run_qps_sweep(
            side=10, faults=5, seed=7,
            stages=((400.0, 24),), chaos_events=3,
        )
        assert [s["qps"] for s in report["stages"]] == [400.0]
        stage = report["stages"][0]
        assert stage["ok"] + stage["shed"] + stage["errors"] <= stage["queries"]
        assert stage["errors"] == 0
        assert stage["p50_ms"] is None or stage["p50_ms"] >= 0.0
        totals = report["totals"]
        assert totals["counters"]["arrived"] == 24
        assert totals["service"]["generation"] >= 1  # chaos actually landed
        assert report["config"]["seed"] == 7
