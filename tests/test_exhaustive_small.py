"""Exhaustive verification on small meshes.

Randomized tests sample; these enumerate.  On meshes small enough to check
*every* source/destination pair against the oracle, the central guarantees
hold universally, not just on the sampled slice:

- Definition 3 and every extension are sound for all pairs;
- Wu's protocol delivers all safe pairs minimally under both tie-breakers;
- Wang's condition equals the DP on all pairs;
- the MCC equivalence holds for all pairs of both quadrant classes.

Fault sets cover the structurally interesting shapes: single block, two
blocks forming a corridor, a wall with a gap, diagonal merges, and blocks
hugging mesh edges.
"""

import numpy as np
import pytest

from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import extension1_decision, extension2_decision
from repro.core.routing import WuRouter, route_with_decision
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists, minimal_path_exists_wang
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.frames import Frame
from repro.mesh.topology import Mesh2D
from repro.routing.router import x_first_tie_breaker

SIDE = 9
MESH = Mesh2D(SIDE, SIDE)

FAULT_SETS = {
    "empty": [],
    "single": [(4, 4)],
    "block_2x2": [(3, 3), (4, 4)],
    "two_blocks_corridor": [(2, 4), (6, 4)],
    "wall_with_gap": [(1, 4), (2, 4), (3, 4), (5, 4), (6, 4), (7, 4)],
    "diagonal_merge": [(2, 2), (3, 3), (4, 4)],
    "edge_hugging": [(0, 4), (4, 0), (8, 4), (4, 8)],
    "corner_block": [(0, 0), (1, 1)],
    "dense_center": [(3, 4), (4, 3), (4, 5), (5, 4)],
}


def _all_pairs(blocks):
    for source in MESH.nodes():
        if blocks.is_unusable(source):
            continue
        for dest in MESH.nodes():
            if dest == source or blocks.is_unusable(dest):
                continue
            yield source, dest


@pytest.mark.parametrize("name", sorted(FAULT_SETS))
class TestExhaustive:
    def test_wang_equals_dp_everywhere(self, name):
        blocks = build_faulty_blocks(MESH, FAULT_SETS[name])
        rects = blocks.rects()
        for source, dest in _all_pairs(blocks):
            assert minimal_path_exists(blocks.unusable, source, dest) == (
                minimal_path_exists_wang(rects, source, dest)
            ), (name, source, dest)

    def test_definition3_sound_everywhere(self, name):
        blocks = build_faulty_blocks(MESH, FAULT_SETS[name])
        levels = compute_safety_levels(MESH, blocks.unusable)
        for source, dest in _all_pairs(blocks):
            if is_safe(levels, source, dest):
                assert minimal_path_exists(blocks.unusable, source, dest), (
                    name,
                    source,
                    dest,
                )

    def test_wu_protocol_delivers_every_safe_pair(self, name):
        blocks = build_faulty_blocks(MESH, FAULT_SETS[name])
        levels = compute_safety_levels(MESH, blocks.unusable)
        routers = [
            WuRouter(MESH, blocks),
            WuRouter(MESH, blocks, tie_breaker=x_first_tie_breaker),
        ]
        for source, dest in _all_pairs(blocks):
            if not is_safe(levels, source, dest):
                continue
            for router in routers:
                path = router.route(source, dest)
                assert path.is_minimal, (name, source, dest)
                assert path.avoids(blocks.unusable), (name, source, dest)

    def test_extension1_sound_and_routable_everywhere(self, name):
        blocks = build_faulty_blocks(MESH, FAULT_SETS[name])
        levels = compute_safety_levels(MESH, blocks.unusable)
        router = WuRouter(MESH, blocks)
        for source, dest in _all_pairs(blocks):
            decision = extension1_decision(MESH, levels, blocks.unusable, source, dest)
            if decision.kind is DecisionKind.UNSAFE:
                continue
            path = route_with_decision(router, decision, blocked=blocks.unusable)
            expected = MESH.distance(source, dest) + decision.expected_length_overhead
            assert path.hops == expected, (name, source, dest)

    def test_extension2_sound_everywhere(self, name):
        blocks = build_faulty_blocks(MESH, FAULT_SETS[name])
        levels = compute_safety_levels(MESH, blocks.unusable)
        for source, dest in _all_pairs(blocks):
            decision = extension2_decision(MESH, levels, source, dest, 1)
            if decision.kind is not DecisionKind.UNSAFE:
                assert minimal_path_exists(blocks.unusable, source, dest), (
                    name,
                    source,
                    dest,
                )

    def test_mcc_equivalence_everywhere(self, name):
        faults = FAULT_SETS[name]
        faulty = np.zeros((SIDE, SIDE), dtype=bool)
        for coord in faults:
            faulty[coord] = True
        for mcc_type in MCCType:
            mccs = build_mccs(MESH, faults, mcc_type)
            for source in MESH.nodes():
                if mccs.is_blocked(source):
                    continue
                for dest in MESH.nodes():
                    if dest == source or mccs.is_blocked(dest):
                        continue
                    frame = Frame.for_pair(source, dest)
                    matches_type = (
                        mcc_type is MCCType.TYPE_ONE
                        if frame.flip_x == frame.flip_y
                        else mcc_type is MCCType.TYPE_TWO
                    )
                    if not matches_type:
                        continue
                    assert minimal_path_exists(faulty, source, dest) == (
                        minimal_path_exists(mccs.blocked, source, dest)
                    ), (name, mcc_type, source, dest)
