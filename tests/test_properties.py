"""Property-based tests (hypothesis) for the core invariants.

These pin the load-bearing claims of the reproduction on randomized inputs:

- Definition 1's fixpoint yields disjoint rectangles (no completion needed).
- Wang's coverage condition == the monotone DP (necessary & sufficient).
- MCC-avoidance existence == faulty-only existence (Wang's MCC theorem).
- Theorem 1 soundness: safe => minimal path exists => Wu's protocol
  delivers in exactly D hops.
- ESL region identity: E + W + 1 equals the free-run length of the row.
- Frames and reflections are involutions.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists, minimal_path_exists_wang
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.frames import Frame
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D

SIDE = 16
MESH = Mesh2D(SIDE, SIDE)

coords = st.tuples(st.integers(0, SIDE - 1), st.integers(0, SIDE - 1))
fault_sets = st.lists(coords, min_size=0, max_size=24, unique=True)

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(faults=fault_sets)
def test_blocks_are_disjoint_rectangles(faults):
    blocks = build_faulty_blocks(MESH, faults)
    assert blocks.rectangularization_rounds == 0
    covered = np.zeros((SIDE, SIDE), dtype=bool)
    for block in blocks:
        for coord in block.rect.coords():
            assert blocks.unusable[coord]
            assert not covered[coord]
            covered[coord] = True
    assert np.array_equal(covered, blocks.unusable)


@COMMON
@given(faults=fault_sets)
def test_blocks_never_touch(faults):
    """Converged blocks are separated (touching regions would have merged)."""
    rects = build_faulty_blocks(MESH, faults).rects()
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            assert not a.expand(1).intersects(b)


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_wang_equals_dp(faults, source, dest):
    blocks = build_faulty_blocks(MESH, faults)
    dp = minimal_path_exists(blocks.unusable, source, dest)
    wang = minimal_path_exists_wang(blocks.rects(), source, dest)
    assert dp == wang


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_mcc_preserves_minimal_reachability(faults, source, dest):
    """Wang's MCC theorem: blocking the MCC nodes removes no minimal path.

    For a quadrant-I/III pair, a minimal path avoiding only the faulty
    nodes exists iff one avoiding the whole type-one MCC does.
    """
    frame = Frame.for_pair(source, dest)
    mcc_type = MCCType.TYPE_ONE if frame.flip_x == frame.flip_y else MCCType.TYPE_TWO
    mccs = build_mccs(MESH, faults, mcc_type)
    if mccs.is_blocked(source) or mccs.is_blocked(dest):
        return  # endpoints must be usable in both models to compare
    faulty_only = mccs.faulty
    assert minimal_path_exists(faulty_only, source, dest) == minimal_path_exists(
        mccs.blocked, source, dest
    )


@COMMON
@given(faults=fault_sets, source=coords, dest=coords)
def test_theorem1_end_to_end(faults, source, dest):
    """Safe => oracle agrees => Wu's protocol delivers minimally."""
    blocks = build_faulty_blocks(MESH, faults)
    if blocks.is_unusable(source) or blocks.is_unusable(dest):
        return
    levels = compute_safety_levels(MESH, blocks.unusable)
    if not is_safe(levels, source, dest):
        return
    assert minimal_path_exists(blocks.unusable, source, dest)
    path = WuRouter(MESH, blocks).route(source, dest)
    assert path.is_minimal
    assert path.avoids(blocks.unusable)


@COMMON
@given(faults=fault_sets)
def test_esl_region_identity(faults):
    """Within a row, E + W + 1 equals the length of the node's free run."""
    blocks = build_faulty_blocks(MESH, faults)
    levels = compute_safety_levels(MESH, blocks.unusable)
    unusable = blocks.unusable
    for y in range(SIDE):
        run_start = 0
        x = 0
        while x < SIDE:
            if unusable[x, y]:
                run_start = x + 1
                x += 1
                continue
            run_end = x
            while run_end + 1 < SIDE and not unusable[run_end + 1, y]:
                run_end += 1
            touches_edge = run_start == 0 or run_end == SIDE - 1
            for cx in range(run_start, run_end + 1):
                east, _, west, _ = levels.esl((cx, y))
                if touches_edge:
                    assert east == UNBOUNDED or west == UNBOUNDED
                if east != UNBOUNDED and west != UNBOUNDED:
                    assert east + west + 1 == run_end - run_start + 1
            x = run_end + 1
            run_start = x


@COMMON
@given(source=coords, dest=coords, probe=coords)
def test_frame_is_involution(source, dest, probe):
    frame = Frame.for_pair(source, dest)
    assert frame.to_global(frame.to_local(probe)) == probe
    lx, ly = frame.to_local(dest)
    assert lx >= 0 and ly >= 0


@COMMON
@given(
    xmin=st.integers(0, SIDE - 1),
    ymin=st.integers(0, SIDE - 1),
    width=st.integers(1, 6),
    height=st.integers(1, 6),
    probe=coords,
)
def test_rect_membership_consistency(xmin, ymin, width, height, probe):
    rect = Rect(xmin, min(xmin + width - 1, SIDE - 1), ymin, min(ymin + height - 1, SIDE - 1))
    assert rect.contains(probe) == (probe in set(rect.coords()))


@COMMON
@given(faults=fault_sets)
def test_mcc_subset_of_block(faults):
    """MCCs refine blocks: every MCC node lies inside some faulty block."""
    blocks = build_faulty_blocks(MESH, faults)
    for mcc_type in MCCType:
        mccs = build_mccs(MESH, faults, mcc_type)
        assert not (mccs.blocked & ~blocks.unusable).any()


@COMMON
@given(faults=fault_sets)
def test_mcc_components_orthogonally_convex(faults):
    for mcc_type in MCCType:
        for component in build_mccs(MESH, faults, mcc_type):
            assert component.is_orthogonally_convex()
