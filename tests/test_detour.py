"""Tests for the non-minimal XY-with-detours baseline router."""

import pytest

from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.detour import DetourRouter
from repro.routing.oracle import shortest_path_bfs
from repro.routing.router import RoutingError


def _router(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return DetourRouter(mesh, blocks), blocks


class TestBasics:
    def test_fault_free_is_pure_xy(self):
        mesh = Mesh2D(10, 10)
        router, _ = _router(mesh, [])
        path = router.route((1, 1), (7, 5))
        assert path.is_minimal
        # XY: all East hops first, then all North hops.
        directions = [d.name for d in path.directions()]
        assert directions == ["EAST"] * 6 + ["NORTH"] * 4

    def test_detours_around_single_block(self):
        mesh = Mesh2D(12, 12)
        router, blocks = _router(mesh, [(5, 4), (6, 5)])  # block [5:6, 4:5]
        # Straight-East route at the block's row must round the block.
        path = router.route((1, 4), (10, 4))
        assert path.dest == (10, 4)
        assert path.avoids(blocks.unusable)
        assert path.hops == 9 + 2 * 2  # up over the block and back down

    def test_detour_side_prefers_destination(self):
        mesh = Mesh2D(12, 12)
        router, _ = _router(mesh, [(5, 4), (6, 5)])
        # Destination further North: round the block over the top.
        up = router.route((1, 4), (10, 6))
        assert all(y >= 4 for _, y in up)
        # Destination further South: round underneath.
        down = router.route((1, 5), (10, 3))
        assert all(y <= 5 for _, y in down)

    def test_vertical_phase_detour(self):
        mesh = Mesh2D(12, 12)
        router, blocks = _router(mesh, [(5, 5), (6, 6)])
        path = router.route((5, 1), (5, 10))
        assert path.dest == (5, 10)
        assert path.avoids(blocks.unusable)
        assert path.hops == 9 + 2 * 2

    def test_endpoint_in_block_rejected(self):
        mesh = Mesh2D(10, 10)
        router, _ = _router(mesh, [(4, 4), (5, 5)])
        with pytest.raises(RoutingError):
            router.route((4, 4), (9, 9))
        with pytest.raises(RoutingError):
            router.route((0, 0), (5, 4))

    def test_edge_spanning_block_fails_cleanly(self):
        """A block touching both horizontal edges cannot be rounded."""
        mesh = Mesh2D(8, 8)
        faults = [(4, y) for y in range(8)]
        router, _ = _router(mesh, faults)
        with pytest.raises(RoutingError):
            router.route((1, 4), (7, 4))


class TestRandomizedDelivery:
    @pytest.mark.parametrize("num_faults", [10, 30, 60])
    def test_delivers_when_blocks_avoid_edges(self, rng, num_faults):
        """With all blocks interior, every free pair is deliverable, and the
        hop count never beats BFS (the true shortest path)."""
        mesh = Mesh2D(30, 30)
        attempts = 0
        while attempts < 5:
            faults = uniform_faults(mesh, num_faults, rng)
            blocks = build_faulty_blocks(mesh, faults)
            if any(
                b.rect.xmin == 0 or b.rect.ymin == 0
                or b.rect.xmax == 29 or b.rect.ymax == 29
                for b in blocks
            ):
                continue  # resample: edge blocks are the model's known gap
            attempts += 1
            router = DetourRouter(mesh, blocks)
            for _ in range(40):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                path = router.route(source, dest)
                assert path.dest == dest
                assert path.avoids(blocks.unusable)
                shortest = shortest_path_bfs(mesh, blocks.unusable, source, dest)
                assert shortest is not None
                assert path.hops >= shortest.hops
                # Detours come in pairs of extra hops: parity is preserved.
                assert (path.hops - manhattan_distance(source, dest)) % 2 == 0

    def test_stretch_is_bounded_by_block_perimeters(self, rng):
        """Each rounded block adds at most its half-perimeter twice."""
        mesh = Mesh2D(30, 30)
        faults = uniform_faults(mesh, 25, rng)
        blocks = build_faulty_blocks(mesh, faults)
        router = DetourRouter(mesh, blocks)
        budget = sum(2 * (b.rect.width + b.rect.height + 2) for b in blocks)
        for _ in range(60):
            source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
            dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
            if blocks.is_unusable(source) or blocks.is_unusable(dest):
                continue
            try:
                path = router.route(source, dest)
            except RoutingError:
                continue  # edge-touching block on the way
            assert path.hops <= manhattan_distance(source, dest) + budget
