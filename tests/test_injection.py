"""Unit tests for the fault workload generators."""

import numpy as np
import pytest

from repro.faults.injection import (
    clustered_faults,
    generate_scenario,
    uniform_faults,
    wall_faults,
)
from repro.mesh.geometry import Rect, chebyshev_distance
from repro.mesh.topology import Mesh2D


class TestUniformFaults:
    def test_count_and_uniqueness(self, rng):
        mesh = Mesh2D(50, 50)
        faults = uniform_faults(mesh, 100, rng)
        assert len(faults) == 100
        assert len(set(faults)) == 100
        for coord in faults:
            assert mesh.in_bounds(coord)

    def test_forbidden_respected(self, rng):
        mesh = Mesh2D(10, 10)
        forbidden = {(x, y) for x in range(5) for y in range(10)}
        faults = uniform_faults(mesh, 40, rng, forbidden=forbidden)
        assert not set(faults) & forbidden

    def test_can_fill_everything_allowed(self, rng):
        mesh = Mesh2D(4, 4)
        faults = uniform_faults(mesh, 16, rng)
        assert len(faults) == 16

    def test_too_many_raises(self, rng):
        mesh = Mesh2D(4, 4)
        with pytest.raises(ValueError):
            uniform_faults(mesh, 17, rng)
        with pytest.raises(ValueError):
            uniform_faults(mesh, 16, rng, forbidden={(0, 0)})

    def test_reproducible(self):
        mesh = Mesh2D(30, 30)
        a = uniform_faults(mesh, 50, np.random.default_rng(5))
        b = uniform_faults(mesh, 50, np.random.default_rng(5))
        assert a == b

    def test_dense_draw_fills_all_but_one(self, rng):
        """Rejection sampling would thrash here; the dense path must place
        size-1 faults in one without-replacement draw."""
        mesh = Mesh2D(20, 20)
        faults = uniform_faults(mesh, mesh.size - 1, rng)
        assert len(faults) == mesh.size - 1
        assert len(set(faults)) == mesh.size - 1

    def test_dense_draw_respects_forbidden(self, rng):
        mesh = Mesh2D(8, 8)
        forbidden = {(x, 0) for x in range(8)}
        faults = uniform_faults(mesh, 56, rng, forbidden=forbidden)
        assert len(faults) == 56
        assert not set(faults) & forbidden

    def test_dense_draw_exact_fill(self, rng):
        mesh = Mesh2D(12, 12)
        forbidden = {(0, 0), (11, 11)}
        faults = uniform_faults(mesh, mesh.size - 2, rng, forbidden=forbidden)
        assert set(faults) == set(mesh.nodes()) - forbidden

    def test_dense_draw_reproducible(self):
        mesh = Mesh2D(10, 10)
        a = uniform_faults(mesh, 70, np.random.default_rng(9))
        b = uniform_faults(mesh, 70, np.random.default_rng(9))
        assert a == b

    def test_out_of_bounds_forbidden_does_not_shrink_capacity(self, rng):
        mesh = Mesh2D(4, 4)
        faults = uniform_faults(mesh, 16, rng, forbidden={(99, 99)})
        assert len(faults) == 16


class TestClusteredFaults:
    def test_faults_near_centers(self, rng):
        mesh = Mesh2D(60, 60)
        faults = clustered_faults(mesh, 30, rng, clusters=3, radius=4)
        assert len(faults) == 30
        # All faults are in-bounds and distinct (generator asserts proximity).
        assert len(set(faults)) == 30

    def test_tiny_radius_produces_dense_blocks(self, rng):
        mesh = Mesh2D(60, 60)
        faults = clustered_faults(mesh, 20, rng, clusters=1, radius=3)
        rect = Rect.bounding(faults)
        assert rect.width <= 7 and rect.height <= 7

    def test_impossible_count_raises(self, rng):
        mesh = Mesh2D(60, 60)
        with pytest.raises(RuntimeError):
            clustered_faults(mesh, 200, rng, clusters=1, radius=2)  # 25 cells max

    def test_invalid_clusters(self, rng):
        with pytest.raises(ValueError):
            clustered_faults(Mesh2D(10, 10), 5, rng, clusters=0)


class TestWallFaults:
    def test_walls_are_straight(self, rng):
        mesh = Mesh2D(40, 40)
        faults = wall_faults(mesh, rng, walls=1, length=12)
        xs = {c[0] for c in faults}
        ys = {c[1] for c in faults}
        assert len(xs) == 1 or len(ys) == 1
        assert len(faults) >= 2

    def test_gap_probability_reduces_length(self, rng):
        mesh = Mesh2D(40, 40)
        solid = wall_faults(mesh, np.random.default_rng(3), walls=5, length=20)
        gappy = wall_faults(
            mesh, np.random.default_rng(3), walls=5, length=20, gap_probability=0.5
        )
        assert len(gappy) < len(solid)


class TestGenerateScenario:
    def test_source_outside_blocks(self, rng):
        mesh = Mesh2D(40, 40)
        for _ in range(10):
            scenario = generate_scenario(mesh, 40, rng)
            assert not scenario.blocks.is_unusable(mesh.center)
            assert mesh.center not in scenario.faults

    def test_explicit_source(self, rng):
        mesh = Mesh2D(40, 40)
        scenario = generate_scenario(mesh, 20, rng, source=(5, 5))
        assert not scenario.blocks.is_unusable((5, 5))

    def test_num_faults(self, rng):
        scenario = generate_scenario(Mesh2D(40, 40), 25, rng)
        assert scenario.num_faults == 25
        assert scenario.blocks.num_faulty == 25

    def test_mcc_cache(self, rng):
        from repro.faults.mcc import MCCType

        scenario = generate_scenario(Mesh2D(30, 30), 15, rng)
        first = scenario.mccs(MCCType.TYPE_ONE)
        assert scenario.mccs(MCCType.TYPE_ONE) is first
        assert scenario.mccs(MCCType.TYPE_TWO) is not first

    def test_pick_destination_outside_blocks(self, rng):
        mesh = Mesh2D(40, 40)
        scenario = generate_scenario(mesh, 60, rng)
        region = Rect(20, 39, 20, 39)
        for _ in range(50):
            dest = scenario.pick_destination(rng, region)
            assert region.contains(dest)
            assert not scenario.blocks.is_unusable(dest)

    def test_pick_destination_excludes(self, rng):
        mesh = Mesh2D(10, 10)
        scenario = generate_scenario(mesh, 0, rng)
        region = Rect(0, 0, 0, 0)
        with pytest.raises(RuntimeError):
            scenario.pick_destination(rng, region, exclude={(0, 0)}, max_attempts=50)

    def test_pick_destination_outside_mesh_raises(self, rng):
        scenario = generate_scenario(Mesh2D(10, 10), 0, rng)
        with pytest.raises(ValueError):
            scenario.pick_destination(rng, Rect(20, 30, 20, 30))
