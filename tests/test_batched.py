"""Property tests: the batched kernels agree with the scalar predicates.

Each kernel in :mod:`repro.core.batched` promises element-wise agreement
with its scalar decision procedure.  The tests sweep random meshes, fault
patterns, sources, and destinations in **all four quadrants** and compare
the boolean masks against per-destination scalar calls.
"""

import numpy as np
import pytest

from repro.core.batched import (
    batch_extension1,
    batch_extension2_from_segments,
    batch_extension3,
    batch_is_safe,
)
from repro.core.conditions import is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision_from_segments,
    extension3_decision,
)
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import compute_safety_levels
from repro.core.segments import build_axis_segments
from repro.faults.coverage import batch_minimal_path_exists, minimal_path_exists
from repro.mesh.frames import Frame
from repro.mesh.geometry import Direction, Rect
from repro.mesh.topology import Mesh2D

from tests.conftest import random_block_set


def _random_case(seed, side=14, faults=10, dests=40):
    """A random (mesh, levels, blocked, source, dests) tuple.

    Destinations are drawn over the whole mesh, so every quadrant relative
    to the source is exercised (including the degenerate on-axis cases).
    """
    rng = np.random.default_rng(seed)
    mesh = Mesh2D(side, side)
    blocks = random_block_set(mesh, faults, rng)
    blocked = blocks.unusable
    levels = compute_safety_levels(mesh, blocked)
    free = np.argwhere(~blocked)
    source = tuple(int(v) for v in free[rng.integers(len(free))])
    dest_rows = free[rng.integers(len(free), size=dests)]
    dest_arr = dest_rows.astype(np.int64)
    dest_list = [tuple(int(v) for v in row) for row in dest_rows]
    return mesh, levels, blocked, source, dest_arr, dest_list, rng


SEEDS = range(8)


class TestBatchIsSafe:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_definition3(self, seed):
        _, levels, _, source, dest_arr, dest_list, _ = _random_case(seed)
        mask = batch_is_safe(levels, source, dest_arr)
        expected = [is_safe(levels, source, dest) for dest in dest_list]
        assert mask.tolist() == expected

    def test_rejects_bad_shape(self):
        mesh = Mesh2D(8, 8)
        levels = compute_safety_levels(mesh, np.zeros((8, 8), dtype=bool))
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            batch_is_safe(levels, (4, 4), np.zeros((3, 3), dtype=np.int64))


class TestBatchExtension1:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("allow_sub_minimal", [False, True])
    def test_matches_scalar_theorem1a(self, seed, allow_sub_minimal):
        mesh, levels, blocked, source, dest_arr, dest_list, _ = _random_case(seed)
        mask = batch_extension1(
            mesh, levels, blocked, source, dest_arr, allow_sub_minimal=allow_sub_minimal
        )
        expected = []
        for dest in dest_list:
            decision = extension1_decision(
                mesh, levels, blocked, source, dest, allow_sub_minimal=allow_sub_minimal
            )
            expected.append(
                decision.ensures_sub_minimal if allow_sub_minimal else decision.ensures_minimal
            )
        assert mask.tolist() == expected


class TestBatchExtension2:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("segment_size", [1, 3, None])
    def test_matches_scalar_theorem1b(self, seed, segment_size):
        mesh, levels, blocked, source, dest_arr, dest_list, _ = _random_case(seed)
        frame = Frame(origin=source)
        east = build_axis_segments(mesh, levels, frame, Direction.EAST, segment_size)
        north = build_axis_segments(mesh, levels, frame, Direction.NORTH, segment_size)
        mask = batch_extension2_from_segments(levels, source, dest_arr, east, north)
        expected = [
            extension2_decision_from_segments(
                levels, source, dest, east, north
            ).ensures_minimal
            for dest in dest_list
        ]
        assert mask.tolist() == expected


class TestBatchExtension3:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_theorem1c_center_pivots(self, seed):
        mesh, levels, blocked, source, dest_arr, dest_list, _ = _random_case(seed)
        region = Rect(source[0], mesh.n - 1, source[1], mesh.m - 1)
        pivots = recursive_center_pivots(region, 3)
        mask = batch_extension3(mesh, levels, blocked, source, dest_arr, pivots)
        expected = [
            extension3_decision(
                mesh, levels, blocked, source, dest, pivots
            ).ensures_minimal
            for dest in dest_list
        ]
        assert mask.tolist() == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_theorem1c_random_pivots(self, seed):
        mesh, levels, blocked, source, dest_arr, dest_list, rng = _random_case(seed)
        pivots = random_pivots(Rect(0, mesh.n - 1, 0, mesh.m - 1), 3, rng)
        mask = batch_extension3(mesh, levels, blocked, source, dest_arr, pivots)
        expected = [
            extension3_decision(
                mesh, levels, blocked, source, dest, pivots
            ).ensures_minimal
            for dest in dest_list
        ]
        assert mask.tolist() == expected

    def test_no_usable_pivots_reduces_to_definition3(self):
        mesh, levels, blocked, source, dest_arr, _, _ = _random_case(3)
        mask = batch_extension3(mesh, levels, blocked, source, dest_arr, [])
        assert mask.tolist() == batch_is_safe(levels, source, dest_arr).tolist()


class TestBatchMinimalPathExists:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_oracle(self, seed):
        _, _, blocked, source, dest_arr, dest_list, _ = _random_case(seed)
        mask = batch_minimal_path_exists(blocked, source, dest_arr)
        expected = [minimal_path_exists(blocked, source, dest) for dest in dest_list]
        assert mask.tolist() == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_maps_are_reused_and_consistent(self, seed):
        _, _, blocked, source, dest_arr, dest_list, _ = _random_case(seed)
        maps = {}
        first = batch_minimal_path_exists(blocked, source, dest_arr, maps=maps)
        assert maps  # at least one quadrant map was built
        built = {key: value.copy() for key, value in maps.items()}
        second = batch_minimal_path_exists(blocked, source, dest_arr, maps=maps)
        assert first.tolist() == second.tolist()
        expected = [minimal_path_exists(blocked, source, dest) for dest in dest_list]
        assert second.tolist() == expected
        for key, value in built.items():
            assert np.array_equal(maps[key], value)

    def test_includes_source_and_blocked_destinations(self):
        _, _, blocked, source, _, _, _ = _random_case(5)
        blocked_cells = np.argwhere(blocked)
        dests = np.vstack([[source], blocked_cells[:5]]).astype(np.int64)
        mask = batch_minimal_path_exists(blocked, source, dests)
        assert mask[0]  # source reaches itself
        assert not mask[1:].any()  # blocked destinations are unreachable

    def test_rejects_bad_shape(self):
        _, _, blocked, source, _, _, _ = _random_case(0)
        with pytest.raises(ValueError, match=r"\(k, 2\)"):
            batch_minimal_path_exists(blocked, source, np.zeros(4, dtype=np.int64))
