"""Unit tests for the faulty block model (Definition 1)."""

import numpy as np
import pytest

from repro.faults.blocks import build_faulty_blocks, disable_fixpoint
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D

from tests.conftest import FIGURE1_FAULTS, random_block_set


class TestPaperExample:
    """The worked example of paper Figure 1 (a)."""

    def test_eight_faults_form_the_paper_block(self, figure1_blocks):
        assert len(figure1_blocks) == 1
        assert figure1_blocks.blocks[0].rect == Rect(2, 6, 3, 6)

    def test_faulty_and_disabled_partition_the_rectangle(self, figure1_blocks):
        block = figure1_blocks.blocks[0]
        assert block.num_faulty == len(FIGURE1_FAULTS)
        assert block.num_faulty + block.num_disabled == block.rect.area
        assert set(block.faulty) | set(block.disabled) == set(block.rect.coords())

    def test_grid_accessors(self, figure1_blocks):
        assert figure1_blocks.is_faulty((3, 3))
        assert figure1_blocks.is_unusable((4, 3))  # disabled corner-fill
        assert not figure1_blocks.is_faulty((4, 3))
        assert not figure1_blocks.is_unusable((0, 0))
        assert figure1_blocks.block_at((4, 5)) is figure1_blocks.blocks[0]
        assert figure1_blocks.block_at((0, 0)) is None


class TestDisableRule:
    def test_no_faults_no_disabling(self):
        mesh = Mesh2D(6, 6)
        blocks = build_faulty_blocks(mesh, [])
        assert len(blocks) == 0
        assert blocks.num_faulty == 0 and blocks.num_disabled == 0

    def test_single_fault_is_own_block(self):
        blocks = build_faulty_blocks(Mesh2D(6, 6), [(2, 3)])
        assert len(blocks) == 1
        assert blocks.blocks[0].rect == Rect(2, 2, 3, 3)
        assert blocks.blocks[0].num_disabled == 0

    def test_diagonal_faults_fill_square(self):
        """Two diagonal faults pinch both off-diagonal nodes."""
        blocks = build_faulty_blocks(Mesh2D(6, 6), [(1, 1), (2, 2)])
        assert len(blocks) == 1
        assert blocks.blocks[0].rect == Rect(1, 2, 1, 2)
        assert blocks.blocks[0].num_disabled == 2

    def test_same_dimension_neighbors_do_not_disable(self):
        """Faults at (x, y-1) and (x, y+1) are in the same dimension."""
        blocks = build_faulty_blocks(Mesh2D(6, 6), [(2, 1), (2, 3)])
        assert len(blocks) == 2
        assert not blocks.is_unusable((2, 2))

    def test_staircase_fills_bounding_square(self):
        blocks = build_faulty_blocks(Mesh2D(8, 8), [(1, 1), (2, 2), (3, 3)])
        assert len(blocks) == 1
        assert blocks.blocks[0].rect == Rect(1, 3, 1, 3)
        assert blocks.blocks[0].num_disabled == 9 - 3

    def test_corner_of_mesh_fills(self):
        """Faults at (0,1) and (1,0) disable the mesh corner (0,0)."""
        blocks = build_faulty_blocks(Mesh2D(6, 6), [(0, 1), (1, 0)])
        assert blocks.is_unusable((0, 0))
        assert blocks.is_unusable((1, 1))
        assert blocks.blocks[0].rect == Rect(0, 1, 0, 1)

    def test_touching_blocks_merge(self):
        """Side-by-side faults connect into a single block."""
        blocks = build_faulty_blocks(Mesh2D(8, 8), [(2, 2), (3, 2)])
        assert len(blocks) == 1
        assert blocks.blocks[0].rect == Rect(2, 3, 2, 2)

    def test_gap_of_one_in_same_dimension_stays_separate(self):
        blocks = build_faulty_blocks(Mesh2D(8, 8), [(2, 2), (4, 2)])
        assert len(blocks) == 2
        assert not blocks.is_unusable((3, 2))

    def test_fixpoint_is_idempotent(self, rng):
        mesh = Mesh2D(30, 30)
        faulty = np.zeros((30, 30), dtype=bool)
        for _ in range(40):
            faulty[rng.integers(0, 30), rng.integers(0, 30)] = True
        once = disable_fixpoint(faulty)
        twice = disable_fixpoint(once)
        assert np.array_equal(once, twice)


class TestBlockSetInvariants:
    @pytest.mark.parametrize("num_faults", [5, 25, 60])
    def test_random_blocks_are_disjoint_rectangles(self, rng, num_faults):
        mesh = Mesh2D(40, 40)
        for _ in range(5):
            blocks = random_block_set(mesh, num_faults, rng)
            # Definition 1 converged without the defensive completion.
            assert blocks.rectangularization_rounds == 0
            # Components exactly fill their rectangles and never overlap.
            covered = np.zeros((mesh.n, mesh.m), dtype=bool)
            for block in blocks:
                for coord in block.rect.coords():
                    assert blocks.unusable[coord]
                    assert not covered[coord]
                    covered[coord] = True
            assert np.array_equal(covered, blocks.unusable)

    def test_block_id_grid_matches_blocks(self, rng):
        mesh = Mesh2D(30, 30)
        blocks = random_block_set(mesh, 30, rng)
        for index, block in enumerate(blocks):
            for coord in block.rect.coords():
                assert blocks.block_id[coord] == index

    def test_counts(self, figure1_blocks):
        assert figure1_blocks.num_faulty == 8
        assert figure1_blocks.num_disabled == 20 - 8
        assert figure1_blocks.average_disabled_per_block() == 12.0

    def test_average_disabled_empty(self):
        blocks = build_faulty_blocks(Mesh2D(5, 5), [])
        assert blocks.average_disabled_per_block() == 0.0

    def test_out_of_bounds_fault_raises(self):
        with pytest.raises(ValueError):
            build_faulty_blocks(Mesh2D(5, 5), [(5, 0)])


class TestImplementationCrossValidation:
    """The frontier fixpoint and run-labelled components must reproduce the
    original dense/BFS implementations exactly (on random grids and the
    structured edge cases)."""

    def _random_masks(self, count=40, seed=123):
        rng = np.random.default_rng(seed)
        for _ in range(count):
            n = int(rng.integers(1, 24))
            m = int(rng.integers(1, 24))
            density = rng.uniform(0.0, 0.6)
            yield rng.random((n, m)) < density

    def test_frontier_fixpoint_matches_dense(self):
        from repro.faults.blocks import _disable_fixpoint_dense

        for faulty in self._random_masks():
            frontier = disable_fixpoint(faulty, method="frontier")
            dense = _disable_fixpoint_dense(faulty)
            assert np.array_equal(frontier, dense)

    def test_frontier_fixpoint_structured_cases(self):
        from repro.faults.blocks import _disable_fixpoint_dense

        cases = [
            np.zeros((5, 5), dtype=bool),  # no faults
            np.ones((4, 4), dtype=bool),  # everything faulty
            np.eye(8, dtype=bool),  # diagonal: cascades to the full square
        ]
        checker = np.zeros((6, 6), dtype=bool)
        checker[::2, ::2] = True
        cases.append(checker)
        for faulty in cases:
            assert np.array_equal(
                disable_fixpoint(faulty, method="frontier"),
                _disable_fixpoint_dense(faulty),
            )

    def test_run_components_match_bfs(self):
        from repro.faults.blocks import _connected_components, _connected_components_bfs

        for mask in self._random_masks(seed=321):
            runs = _connected_components(mask, method="runs")
            bfs = _connected_components_bfs(mask)
            assert sorted(map(sorted, runs)) == sorted(map(sorted, bfs))

    def test_unknown_methods_raise(self):
        from repro.faults.blocks import _connected_components

        with pytest.raises(ValueError, match="fixpoint method"):
            disable_fixpoint(np.zeros((3, 3), dtype=bool), method="nope")
        with pytest.raises(ValueError, match="components method"):
            _connected_components(np.zeros((3, 3), dtype=bool), method="nope")
