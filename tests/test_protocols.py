"""Distributed protocols versus their centralized counterparts.

These are the key simulator integration tests: every information protocol of
the paper, run as message passing, must converge to exactly the state the
centralized computation produces.
"""

import numpy as np
import pytest

from repro.core.boundaries import CanonicalBoundaryMap
from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType, label_statuses
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import (
    run_block_formation,
    run_boundary_distribution,
    run_mcc_formation,
    run_pivot_broadcast,
    run_region_exchange,
    run_safety_propagation,
)

from tests.conftest import FIGURE1_FAULTS


class TestBlockFormationProtocol:
    def test_figure1_example(self):
        mesh = Mesh2D(10, 10)
        result = run_block_formation(mesh, FIGURE1_FAULTS)
        expected = build_faulty_blocks(mesh, FIGURE1_FAULTS).unusable
        assert np.array_equal(result.unusable, expected)

    @pytest.mark.parametrize("num_faults", [5, 25, 60])
    def test_matches_fixpoint_on_random_patterns(self, rng, num_faults):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            result = run_block_formation(mesh, faults)
            expected = build_faulty_blocks(mesh, faults).unusable
            assert np.array_equal(result.unusable, expected)

    def test_no_faults_no_messages(self):
        result = run_block_formation(Mesh2D(10, 10), [])
        assert result.stats.messages == 0
        assert not result.unusable.any()

    def test_message_cost_scales_with_disabled(self):
        """Announcements come only from nodes that change state."""
        mesh = Mesh2D(12, 12)
        result = run_block_formation(mesh, [(3, 3), (4, 4), (5, 5)])
        disabled = int(result.unusable.sum()) - 3
        assert disabled > 0
        # Each disabled node broadcasts once to at most 4 neighbours.
        assert result.stats.messages <= 4 * disabled


class TestMCCFormationProtocol:
    @pytest.mark.parametrize("mcc_type", [MCCType.TYPE_ONE, MCCType.TYPE_TWO])
    def test_figure1_example(self, mcc_type):
        mesh = Mesh2D(10, 10)
        faulty = np.zeros((10, 10), dtype=bool)
        for coord in FIGURE1_FAULTS:
            faulty[coord] = True
        result = run_mcc_formation(mesh, FIGURE1_FAULTS, mcc_type)
        expected = label_statuses(mesh, faulty, mcc_type)
        assert np.array_equal(result.status, expected)

    @pytest.mark.parametrize("num_faults", [10, 40])
    def test_matches_labeling_on_random_patterns(self, rng, num_faults):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            faulty = np.zeros((25, 25), dtype=bool)
            for coord in faults:
                faulty[coord] = True
            for mcc_type in MCCType:
                result = run_mcc_formation(mesh, faults, mcc_type)
                expected = label_statuses(mesh, faulty, mcc_type)
                assert np.array_equal(result.status, expected), mcc_type


class TestSafetyPropagationProtocol:
    @pytest.mark.parametrize("num_faults", [5, 30])
    def test_matches_centralized_esl(self, rng, num_faults):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks = build_faulty_blocks(mesh, faults)
            result = run_safety_propagation(mesh, blocks.unusable)
            expected = compute_safety_levels(mesh, blocks.unusable)
            for coord in mesh.nodes():
                if blocks.unusable[coord]:
                    continue
                assert result.levels.esl(coord) == expected.esl(coord), coord

    def test_clear_mesh_exchanges_nothing(self):
        """Default is unbounded: no blocks, no information distribution."""
        mesh = Mesh2D(15, 15)
        result = run_safety_propagation(mesh, np.zeros((15, 15), dtype=bool))
        assert result.stats.messages == 0
        assert result.levels.esl((7, 7)) == (UNBOUNDED,) * 4

    def test_messages_confined_to_affected_rows_and_columns(self):
        mesh = Mesh2D(20, 20)
        blocks = build_faulty_blocks(mesh, [(10, 10)])
        result = run_safety_propagation(mesh, blocks.unusable)
        # One block at (10, 10) in a 20x20 mesh.  Four chains run outward
        # from the block's neighbours: West side has 10 free nodes (seed at
        # x=9 plus 9 recipients), East side 9 (seed at x=11 plus 8), and the
        # two vertical chains mirror them: 9 + 8 + 9 + 8 = 34 messages, all
        # confined to the affected row and column.
        assert result.stats.messages == 34
        assert result.levels.esl((0, 10))[0] == 9  # E of (0,10): block at 10


class TestBoundaryDistributionProtocol:
    @pytest.mark.parametrize("num_faults", [5, 25, 60])
    def test_matches_centralized_annotations(self, rng, num_faults):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks = build_faulty_blocks(mesh, faults)
            rects = blocks.rects()
            result = run_boundary_distribution(mesh, rects, blocks.unusable)
            expected = CanonicalBoundaryMap.build(mesh, rects, blocks.unusable)
            expected_map = {
                coord: {(t.block_index, t.line): t.toward for t in tags}
                for coord, tags in expected.annotations.items()
            }
            actual_map = {
                coord: {(t.block_index, t.line): t.toward for t in tags}
                for coord, tags in result.annotations.items()
            }
            assert actual_map == expected_map

    def test_line_message_cost(self):
        """One message per polyline hop beyond the seeds."""
        mesh = Mesh2D(20, 20)
        blocks = build_faulty_blocks(mesh, [(10, 10)])
        result = run_boundary_distribution(mesh, blocks.rects(), blocks.unusable)
        # L1 covers x 0..11 at y=9 (12 nodes, 3 seeded), L3 covers y 0..11 at
        # x=9 (12 nodes, 3 seeded).  Seeds all forward; receivers forward
        # until the mesh edge swallows the last sends.
        assert result.stats.messages == 2 * 12 - 2  # every node forwards once


class TestRegionExchangeProtocol:
    def test_row_knowledge_covers_region(self, rng):
        mesh = Mesh2D(20, 20)
        blocks = build_faulty_blocks(mesh, [(7, 5), (14, 5)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        result = run_region_exchange(mesh, blocks.unusable, levels)
        # Node (10, 5) sits between the two blocks: its region is x in 8..13.
        knowledge = result.row_knowledge[(10, 5)]
        assert set(knowledge) == set(range(8, 14))
        for x, level in knowledge.items():
            assert level == int(levels.north[x, 5])

    def test_unblocked_row_region_spans_mesh(self, rng):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(5, 3)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        result = run_region_exchange(mesh, blocks.unusable, levels)
        assert set(result.row_knowledge[(4, 8)]) == set(range(12))
        assert set(result.column_knowledge[(4, 8)]) == set(range(12))

    def test_matches_extension2_segments(self, rng):
        """The distributed knowledge reproduces build_axis_segments(size=1)."""
        from repro.core.segments import build_axis_segments
        from repro.mesh.frames import Frame
        from repro.mesh.geometry import Direction

        mesh = Mesh2D(20, 20)
        faults = uniform_faults(mesh, 25, rng)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        result = run_region_exchange(mesh, blocks.unusable, levels)
        for _ in range(20):
            source = (int(rng.integers(0, 20)), int(rng.integers(0, 20)))
            if blocks.is_unusable(source):
                continue
            frame = Frame.for_pair(source, (19, 19))
            segments = build_axis_segments(mesh, levels, frame, Direction.EAST, 1)
            knowledge = result.row_knowledge[source]
            for sample in segments.samples:
                assert knowledge[sample.node[0]] == sample.level

    def test_two_messages_per_link(self):
        mesh = Mesh2D(10, 1)
        blocks = build_faulty_blocks(mesh, [])
        levels = compute_safety_levels(mesh, blocks.unusable)
        result = run_region_exchange(mesh, blocks.unusable, levels)
        # A 10-node line: the row sweep sends 9 East-bound + 9 West-bound.
        assert result.stats.messages == 18


class TestPivotBroadcastProtocol:
    def test_tables_complete(self, rng):
        mesh = Mesh2D(15, 15)
        blocks = build_faulty_blocks(mesh, [(7, 7)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        pivots = [(3, 3), (11, 11)]
        result = run_pivot_broadcast(mesh, blocks.unusable, levels, pivots)
        for coord, table in result.tables.items():
            assert set(table) == set(pivots), coord
            for pivot in pivots:
                assert table[pivot] == levels.esl(pivot)

    def test_blocked_pivot_not_broadcast(self):
        mesh = Mesh2D(15, 15)
        blocks = build_faulty_blocks(mesh, [(7, 7)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        result = run_pivot_broadcast(mesh, blocks.unusable, levels, [(7, 7), (3, 3)])
        assert set(result.tables[(0, 0)]) == {(3, 3)}

    def test_flood_cost_is_linear_per_pivot(self):
        mesh = Mesh2D(12, 12)
        unusable = np.zeros((12, 12), dtype=bool)
        levels = compute_safety_levels(mesh, unusable)
        one = run_pivot_broadcast(mesh, unusable, levels, [(6, 6)])
        two = run_pivot_broadcast(mesh, unusable, levels, [(6, 6), (2, 2)])
        assert one.stats.messages > 0
        assert two.stats.messages == pytest.approx(2 * one.stats.messages, rel=0.05)
