"""Unit tests for extended safety levels."""

import numpy as np
import pytest

from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Direction
from repro.mesh.topology import Mesh2D


def _levels(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return compute_safety_levels(mesh, blocks.unusable), blocks


class TestNoFaults:
    def test_default_is_unbounded(self):
        mesh = Mesh2D(8, 8)
        levels, _ = _levels(mesh, [])
        for node in [(0, 0), (3, 4), (7, 7)]:
            assert levels.esl(node) == (UNBOUNDED,) * 4


class TestSingleBlock:
    def test_distances_around_block(self):
        """Block [3:4, 3:4]; probe the four directions from (0, 3)."""
        mesh = Mesh2D(10, 10)
        levels, _ = _levels(mesh, [(3, 3), (4, 4)])  # diagonal pair fills square
        east, south, west, north = levels.esl((0, 3))
        assert east == 2  # (1,3), (2,3) clear, (3,3) blocked
        assert south == UNBOUNDED
        assert west == UNBOUNDED
        assert north == UNBOUNDED

    def test_node_just_beside_block(self):
        mesh = Mesh2D(10, 10)
        levels, _ = _levels(mesh, [(3, 3), (4, 4)])
        assert levels.esl((2, 3))[0] == 0  # East neighbour blocked
        assert levels.esl((5, 4))[2] == 0  # West neighbour blocked
        assert levels.esl((3, 2))[3] == 0  # North neighbour blocked
        assert levels.esl((4, 5))[1] == 0  # South neighbour blocked

    def test_level_accessor_by_direction(self):
        mesh = Mesh2D(10, 10)
        levels, _ = _levels(mesh, [(5, 2)])
        assert levels.level((0, 2), Direction.EAST) == 4
        assert levels.level((9, 2), Direction.WEST) == 3
        assert levels.level((5, 0), Direction.NORTH) == 1
        assert levels.level((5, 9), Direction.SOUTH) == 6

    def test_rows_without_blocks_stay_unbounded(self):
        mesh = Mesh2D(10, 10)
        levels, _ = _levels(mesh, [(5, 2)])
        assert levels.esl((0, 7)) == (UNBOUNDED,) * 4


class TestTwoBlocksSameRow:
    def test_nearest_block_wins(self):
        mesh = Mesh2D(20, 20)
        levels, _ = _levels(mesh, [(5, 10), (15, 10)])
        east, _, west, _ = levels.esl((8, 10))
        assert east == 6  # columns 9..14 clear, block at 15
        assert west == 2  # columns 7, 6 clear, block at 5

    def test_between_matches_region_partition(self):
        """The region between two blocks is exactly E + W + 1 wide."""
        mesh = Mesh2D(20, 20)
        levels, _ = _levels(mesh, [(5, 10), (15, 10)])
        for x in range(6, 15):
            east, _, west, _ = levels.esl((x, 10))
            assert east + west + 1 == 15 - 5 - 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("num_faults", [5, 20, 50])
    def test_random_grids(self, rng, num_faults):
        mesh = Mesh2D(25, 25)
        for _ in range(4):
            faults = uniform_faults(mesh, num_faults, rng)
            blocks = build_faulty_blocks(mesh, faults)
            levels = compute_safety_levels(mesh, blocks.unusable)
            unusable = blocks.unusable
            for _ in range(40):
                x = int(rng.integers(0, 25))
                y = int(rng.integers(0, 25))
                if unusable[x, y]:
                    continue
                expected_east = _count_clear(unusable, x, y, 1, 0)
                expected_west = _count_clear(unusable, x, y, -1, 0)
                expected_north = _count_clear(unusable, x, y, 0, 1)
                expected_south = _count_clear(unusable, x, y, 0, -1)
                assert levels.esl((x, y)) == (
                    expected_east,
                    expected_south,
                    expected_west,
                    expected_north,
                )

    def test_shape_mismatch_raises(self):
        mesh = Mesh2D(5, 5)
        with pytest.raises(ValueError):
            compute_safety_levels(mesh, np.zeros((4, 5), dtype=bool))


def _count_clear(unusable, x, y, dx, dy):
    """Clear hops strictly beyond (x, y); UNBOUNDED if clear to the edge."""
    n, m = unusable.shape
    count = 0
    cx, cy = x + dx, y + dy
    while 0 <= cx < n and 0 <= cy < m:
        if unusable[cx, cy]:
            return count
        count += 1
        cx += dx
        cy += dy
    return UNBOUNDED
