"""The HTTP exporter: scrape endpoints, health semantics, atomic push."""

import json
import urllib.request

import pytest

from repro.obs import (
    MetricsServer,
    MetricsSink,
    Observatory,
    SampleStore,
    ThresholdRule,
    Tracer,
    atomic_write_text,
    render_timeseries,
)
from tests.promtext import PromParseError, parse


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8"), dict(response.headers)


def _observed_observatory(breach=False):
    observatory = Observatory(rules=(ThresholdRule("deep", "q", ">", 10.0),))
    values = [1.0, 2.0, 20.0 if breach else 3.0]
    for tick, value in enumerate(values):
        observatory.store.append(float(tick), {"q": value, "r": value * 2})
        observatory.alerts.evaluate(float(tick), observatory.store)
    return observatory


class TestEndpoints:
    def test_metrics_scrape_parses_strictly(self):
        metrics = MetricsSink()
        tracer = Tracer(metrics)
        tracer.emit("protocol_msg", msg="esl", time=0, queue=1)
        observatory = _observed_observatory()
        with MetricsServer(observatory=observatory, metrics=metrics) as server:
            status, body, headers = _get(server.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse(body)
        assert "repro_live_sample" in families
        assert "repro_live_tick" in families
        assert "repro_alert_active" in families
        sample_labels = {
            sample.label_dict["series"]
            for sample in families["repro_live_sample"].samples
        }
        assert sample_labels == {"q", "r"}

    def test_series_json_matches_snapshot(self):
        observatory = _observed_observatory()
        with MetricsServer(observatory=observatory) as server:
            status, body, _ = _get(server.url("/series.json"))
        assert status == 200
        payload = json.loads(body)
        assert payload["series"] == observatory.store.snapshot()["series"]
        assert payload["alerts"] == []
        assert payload["firing"] == []

    def test_healthz_ok_then_alerting_503(self):
        with MetricsServer(observatory=_observed_observatory()) as server:
            status, body, _ = _get(server.url("/healthz"))
            assert status == 200
            assert json.loads(body)["status"] == "ok"

        with MetricsServer(observatory=_observed_observatory(breach=True)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/healthz"))
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "alerting"
            assert payload["firing"] == ["deep"]

    def test_unknown_path_404(self):
        with MetricsServer(observatory=_observed_observatory()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/nope"))
            assert excinfo.value.code == 404

    def test_no_sources_still_valid(self):
        with MetricsServer() as server:
            status, body, _ = _get(server.url("/metrics"))
            assert status == 200
            assert body.startswith("#")
            parse(body)
            status, body, _ = _get(server.url("/healthz"))
            assert json.loads(body)["status"] == "ok"

    def test_double_start_rejected(self):
        server = MetricsServer()
        try:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()


class TestReadiness:
    def test_readyz_ready_then_draining_503(self):
        with MetricsServer(observatory=_observed_observatory()) as server:
            status, body, _ = _get(server.url("/readyz"))
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ready"
            assert payload["inflight"] == 1  # this scrape counts itself

            server.mark_draining()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/readyz"))
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "draining"

            server.mark_ready()
            status, _, _ = _get(server.url("/readyz"))
            assert status == 200

    def test_drain_idle_server_stops_immediately(self):
        server = MetricsServer(observatory=_observed_observatory()).start()
        url = server.url("/readyz")
        assert _get(url)[0] == 200
        assert server.drain(grace=1.0) is True
        with pytest.raises(urllib.error.URLError):
            _get(url)

    def test_draining_still_serves_scrapes(self):
        # Out of rotation is not down: /metrics keeps answering so the
        # final scrape during a rolling restart still lands.
        with MetricsServer(observatory=_observed_observatory()) as server:
            server.mark_draining()
            status, body, _ = _get(server.url("/metrics"))
            assert status == 200
            parse(body)


class TestConcurrentScrapes:
    def test_series_json_content_length_under_churn(self):
        # Regression: /series.json used to compute Content-Length from
        # the *character* count of a payload rendered once and the body
        # from a second render -- a store append between the two (or any
        # non-ASCII sample name) produced a short read.  Bodies are now
        # encoded to bytes first, so every concurrent response must be
        # exactly its declared length and parse as JSON.
        import threading

        observatory = _observed_observatory()
        errors: list[str] = []
        with MetricsServer(observatory=observatory) as server:
            url = server.url("/series.json")
            stop = threading.Event()

            def churn():
                tick = 3.0
                while not stop.is_set():
                    observatory.store.append(tick, {"q": tick, "r": 2 * tick})
                    tick += 1.0

            def scrape():
                for _ in range(20):
                    try:
                        status, body, headers = _get(url)
                    except OSError as exc:  # pragma: no cover - failure detail
                        errors.append(f"scrape failed: {exc}")
                        return
                    declared = int(headers["Content-Length"])
                    actual = len(body.encode("utf-8"))
                    if declared != actual:
                        errors.append(f"Content-Length {declared} != {actual}")
                        return
                    try:
                        json.loads(body)
                    except ValueError as exc:
                        errors.append(f"torn JSON body: {exc}")
                        return

            writer = threading.Thread(target=churn)
            scrapers = [threading.Thread(target=scrape) for _ in range(4)]
            writer.start()
            for thread in scrapers:
                thread.start()
            for thread in scrapers:
                thread.join()
            stop.set()
            writer.join()
        assert errors == []


class TestPushMode:
    def test_write_metrics_and_series(self, tmp_path):
        observatory = _observed_observatory()
        server = MetricsServer(observatory=observatory)
        metrics_path = tmp_path / "out" / "metrics.prom"
        series_path = tmp_path / "out" / "series.json"
        server.write_metrics(str(metrics_path))
        server.write_series(str(series_path))
        server.stop()
        parse(metrics_path.read_text())
        payload = json.loads(series_path.read_text())
        assert payload["series"] == observatory.store.snapshot()["series"]
        # No temp droppings left behind.
        assert sorted(p.name for p in metrics_path.parent.iterdir()) == [
            "metrics.prom", "series.json",
        ]

    def test_atomic_write_replaces(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "one\n")
        atomic_write_text(str(target), "two\n")
        assert target.read_text() == "two\n"

    def test_atomic_write_failure_leaves_no_temp(self, tmp_path):
        target = tmp_path / "dir"
        target.mkdir()
        with pytest.raises(OSError):
            atomic_write_text(str(target), "boom")  # destination is a directory
        assert list(tmp_path.iterdir()) == [target]


class TestRenderTimeseries:
    def test_alert_families(self):
        observatory = _observed_observatory(breach=True)
        text = render_timeseries(observatory.store, observatory.alerts)
        families = parse(text)
        active = {
            sample.label_dict["rule"]: sample.value
            for sample in families["repro_alert_active"].samples
        }
        assert active == {"deep": 1.0}
        fired = {
            sample.label_dict["rule"]: sample.value
            for sample in families["repro_alerts_fired_total"].samples
        }
        assert fired == {"deep": 1.0}

    def test_empty_store_renders_empty(self):
        assert render_timeseries(SampleStore()) == ""

    def test_strictness_of_test_parser(self):
        with pytest.raises(PromParseError):
            parse("no_type_header 1\n")
        with pytest.raises(PromParseError):
            parse("# TYPE a gauge\n# TYPE a gauge\na 1\n")
        with pytest.raises(PromParseError):
            parse("# TYPE a gauge\na 1\na 2\n")
        with pytest.raises(PromParseError):
            parse("# TYPE a gauge\na 1")  # missing trailing newline
