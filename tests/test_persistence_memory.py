"""Tests for JSON persistence and the memory-model accounting."""

import json

import numpy as np
import pytest

from repro.experiments.memory_model import measure_memory
from repro.experiments.persistence import (
    load_scenario,
    load_series,
    save_scenario,
    save_series,
    scenario_from_dict,
    series_from_dict,
)
from repro.experiments.report import FigureSeries
from repro.analysis.statistics import Estimate
from repro.faults.injection import generate_scenario
from repro.mesh.topology import Mesh2D


class TestScenarioPersistence:
    def test_round_trip(self, tmp_path, rng):
        scenario = generate_scenario(Mesh2D(20, 20), 15, rng)
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.mesh == scenario.mesh
        assert loaded.faults == scenario.faults
        assert np.array_equal(loaded.blocks.unusable, scenario.blocks.unusable)

    def test_file_is_small_inputs_only(self, tmp_path, rng):
        scenario = generate_scenario(Mesh2D(100, 100), 50, rng)
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        assert path.stat().st_size < 4096  # faults only, no derived grids

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"kind": "figure-series", "format": 1})

    def test_future_format_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict(
                {"kind": "fault-scenario", "format": 999, "mesh": [4, 4], "faults": []}
            )


class TestSeriesPersistence:
    def _series(self):
        series = FigureSeries(figure_id="figT", title="t", x_label="faults")
        series.xs = [10.0, 20.0]
        series.series = {
            "a": [Estimate(0.9, 0.01, 50), Estimate(0.8, 0.02, 50)],
        }
        series.notes = ["note one"]
        return series

    def test_round_trip(self, tmp_path):
        series = self._series()
        path = tmp_path / "series.json"
        save_series(series, path)
        loaded = load_series(path)
        assert loaded.figure_id == "figT"
        assert loaded.xs == series.xs
        assert loaded.notes == ["note one"]
        assert loaded.series["a"][1].value == pytest.approx(0.8)
        assert loaded.series["a"][1].samples == 50
        assert loaded.to_csv() == series.to_csv()

    def test_ragged_data_rejected_on_load(self):
        data = {
            "kind": "figure-series",
            "format": 1,
            "figure_id": "x",
            "title": "t",
            "x_label": "k",
            "xs": [1.0, 2.0],
            "series": {"a": [{"value": 1, "half_width": 0, "samples": 1}]},
        }
        with pytest.raises(ValueError):
            series_from_dict(data)

    def test_json_is_valid(self, tmp_path):
        path = tmp_path / "series.json"
        save_series(self._series(), path)
        json.loads(path.read_text())  # does not raise


class TestMemoryModel:
    def test_orders_of_magnitude(self, rng):
        scenario = generate_scenario(Mesh2D(60, 60), 18, rng)
        report = measure_memory(scenario.blocks)
        # Routing table holds one entry per other node.
        assert report.routing_table_per_node == 60 * 60 - 1
        # The global map is 4 words per block.
        assert report.global_map_per_node == 4 * len(scenario.blocks)
        # The coded model is a small constant plus local boundary tags.
        assert 4 <= report.esl_per_node < 40
        assert report.esl_per_node < report.global_map_per_node or len(scenario.blocks) < 3
        assert report.esl_per_node < report.routing_table_per_node

    def test_no_faults_is_bare_esl(self):
        from repro.faults.blocks import build_faulty_blocks

        mesh = Mesh2D(30, 30)
        scenario_blocks = build_faulty_blocks(mesh, [])
        report = measure_memory(scenario_blocks)
        assert report.esl_per_node == 4.0
        assert report.esl_max_node == 4
        assert report.global_map_per_node == 0

    def test_table_renders(self, rng):
        scenario = generate_scenario(Mesh2D(40, 40), 12, rng)
        table = measure_memory(scenario.blocks).to_table()
        assert "routing table" in table
        assert "Extension 3" in table


class TestFigureRoundTrip:
    def test_real_figure_survives_round_trip(self, tmp_path):
        """A real (tiny) figure run saves and reloads bit-identically."""
        from repro.experiments import ExperimentConfig, fig7_affected_rows
        from repro.experiments.persistence import load_series, save_series

        config = ExperimentConfig.scaled(
            side=32, patterns_per_count=2, destinations_per_pattern=3
        )
        series = fig7_affected_rows(config)
        path = tmp_path / "fig7.json"
        save_series(series, path)
        loaded = load_series(path)
        assert loaded.to_table() == series.to_table()
        assert loaded.to_csv() == series.to_csv()
