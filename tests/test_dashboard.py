"""ANSI dashboard rendering: sparklines, panel layout, alert banner."""

import pytest

from repro.obs import Dashboard, Observatory, ThresholdRule, sparkline
from repro.obs.dashboard import SPARK_GLYPHS, format_value


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_quiet(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_GLYPHS[0] * 3

    def test_ramp_uses_full_range(self):
        line = sparkline([float(i) for i in range(8)])
        assert line[0] == SPARK_GLYPHS[0]
        assert line[-1] == SPARK_GLYPHS[-1]
        assert len(line) == 8

    def test_resampling_is_deterministic_and_bounded(self):
        values = [float(i % 13) for i in range(1000)]
        line = sparkline(values, width=40)
        assert len(line) == 40
        assert line == sparkline(values, width=40)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestFormatValue:
    def test_scales(self):
        assert format_value(950.0) == "950"
        assert format_value(1_234_567.0) == "1.23M"
        assert format_value(2_500.0) == "2.50k"
        assert format_value(3_000_000_000.0) == "3.00G"
        assert format_value(1.5) == "1.50"


def _observatory(breach=False):
    observatory = Observatory(rules=(ThresholdRule("deep", "q", ">", 10.0),))
    for tick, value in enumerate([1.0, 4.0, 20.0 if breach else 2.0]):
        observatory.store.append(float(tick), {"q": value})
        observatory.alerts.evaluate(float(tick), observatory.store)
    return observatory


class TestDashboard:
    def test_render_layout(self):
        panel = Dashboard(_observatory(), color=False).render()
        lines = panel.splitlines()
        assert lines[0].startswith("repro top  t=2")
        assert any(line.startswith("q ") for line in lines)
        assert "[1 .. 4]" in panel

    def test_alert_banner_when_firing(self):
        panel = Dashboard(_observatory(breach=True), color=False).render()
        assert "ALERT: deep" in panel
        assert "! [deep] t=2" in panel

    def test_no_color_means_no_escapes(self):
        dashboard = Dashboard(_observatory(breach=True), color=False)
        assert "\x1b[" not in dashboard.render()
        assert "\x1b[" not in dashboard.frame()

    def test_color_frame_homes_cursor(self):
        frame = Dashboard(_observatory(), color=True).frame()
        assert frame.startswith("\x1b[H\x1b[0J")

    def test_empty_observatory(self):
        panel = Dashboard(Observatory(rules=()), color=False).render()
        assert "(no samples yet)" in panel

    def test_series_filter(self):
        observatory = _observatory()
        observatory.store.append(3.0, {"q": 2.0, "other": 9.0})
        panel = Dashboard(observatory, color=False, series=("other",)).render()
        assert "other" in panel
        assert "\nq " not in panel
