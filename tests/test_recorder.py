"""Flight recorder: causal lineage, deterministic replay, bisection.

The acceptance gates of the observability PR:

- **record -> replay is bit-identical**: a seeded chaos run (crash/revive
  schedule, 5% loss) recorded once and re-executed from its recipe emits
  the same canonical event stream and lands on the same final state;
- **recording is transparent**: a recorded run produces exactly the
  state and stats an unrecorded run produces;
- **bisection is exact**: fed a deliberately perturbed replay, the
  bisector names the *first* divergent event id and attaches both causal
  ancestries, and the log variant gets there through the sidecar index
  in O(log ticks) digest probes instead of a full scan.
"""

import hashlib
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.chaos import ChannelFaultPlan, ChaosEvent, ChaosRunner, ChaosSchedule
from repro.mesh.topology import Mesh2D
from repro.obs import (
    FlightRecorder,
    RecorderSink,
    TraceEvent,
    ancestry,
    bisect_logs,
    bisect_streams,
    canonical,
    read_index,
    read_recording,
    render_lineage,
    replay_events,
    replay_recording,
    state_at,
)
from repro.obs.recorder import canonical_bytes, index_path_for
from repro.obs.replay import build_runner, recipe_of

FAULTS = [(3, 3), (3, 4), (7, 7)]


def _plan() -> ChannelFaultPlan:
    return ChannelFaultPlan(drop=0.05, duplicate=0.02, corrupt=0.02, jitter=1, seed=5)


def _schedule(mesh: Mesh2D) -> ChaosSchedule:
    rng = np.random.default_rng(11)
    return ChaosSchedule.random(mesh, rng, events=8, forbidden=set(FAULTS))


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One seeded chaos run (crash/revive + 5% loss), flight-recorded to
    disk; shared by the whole module (every consumer only reads it)."""
    log = tmp_path_factory.mktemp("recording") / "run.jsonl"
    mesh = Mesh2D(10, 10)
    recorder = FlightRecorder(log)
    runner = ChaosRunner(
        mesh,
        faults=FAULTS,
        plan=_plan(),
        schedule=_schedule(mesh),
        stabilize_rounds=2,
        recorder=recorder,
    )
    outcome = runner.run()
    recorder.close()
    return SimpleNamespace(
        log=log,
        recorder=recorder,
        runner=runner,
        outcome=outcome,
        events=recorder.events,
    )


class TestRecordingStructure:
    def test_run_meta_header_carries_the_recipe(self, recorded):
        header = recorded.events[0]
        assert header.kind == "run_meta"
        recipe = recipe_of(recorded.events)
        assert recipe["n"] == recipe["m"] == 10
        assert sorted(tuple(c) for c in recipe["faults"]) == sorted(FAULTS)
        assert recipe["plan"]["drop"] == 0.05
        assert recipe["plan"]["seed"] == 5
        assert len(recipe["schedule"]) == 8
        assert recipe["stabilize_rounds"] == 2

    def test_event_ids_are_positions_and_causes_point_backwards(self, recorded):
        for position, event in enumerate(recorded.events):
            assert event.seq == position
            if event.cause is not None:
                assert 0 <= event.cause < event.seq

    def test_every_delivery_chains_to_its_send(self, recorded):
        table = {event.seq: event for event in recorded.events}
        deliveries = [e for e in recorded.events if e.kind == "msg_deliver"]
        assert deliveries, "the run delivered no messages?"
        for delivery in deliveries:
            assert delivery.cause is not None
            assert table[delivery.cause].kind in ("msg_send", "msg_dup")

    def test_chaos_verdicts_are_recorded(self, recorded):
        kinds = [event.kind for event in recorded.events]
        assert kinds.count("chaos_crash") == len(recorded.outcome.crashed)
        assert kinds.count("chaos_revive") == len(recorded.outcome.revived)
        assert "msg_lost" in kinds  # the 5% loss actually fired
        # 2 stabilization pulses + one epoch bump per revive
        assert kinds.count("epoch_bump") == 2 + len(recorded.outcome.revived)

    def test_tick_events_are_strictly_monotone(self, recorded):
        times = [e.data["time"] for e in recorded.events if e.kind == "tick"]
        assert len(times) > 10
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_canonical_strips_wall_clock_fields(self):
        payload = {
            "kind": "span_end",
            "seq": 4,
            "data": {"name": "x", "span_id": 0, "duration": 0.25},
        }
        assert canonical(payload)["data"] == {"name": "x", "span_id": 0}
        assert "duration" not in str(canonical_bytes(payload))


class TestRecordingTransparency:
    def test_recorded_run_matches_unrecorded_state_and_stats(self, recorded):
        bare = build_runner(recipe_of(recorded.events))  # no recorder
        bare.run()
        assert np.array_equal(bare.unusable_grid(), recorded.runner.unusable_grid())
        ours, theirs = recorded.runner.safety_levels(), bare.safety_levels()
        for direction in ("east", "south", "west", "north"):
            assert np.array_equal(getattr(ours, direction), getattr(theirs, direction))
        assert bare.network.current_stats() == recorded.outcome.stats


class TestReplay:
    def test_replay_is_bit_identical(self, recorded):
        result = replay_events(recorded.events)
        assert result.identical, result.summary()
        assert result.events_replayed == result.events_recorded == len(recorded.events)
        assert result.divergence.probes == 0
        assert "REPLAY OK" in result.summary()

    def test_replay_reaches_the_same_final_state(self, recorded):
        replay_recorder = FlightRecorder()
        rerun = build_runner(recipe_of(recorded.events), recorder=replay_recorder)
        outcome = rerun.run()
        assert outcome.final_faults == recorded.outcome.final_faults
        assert outcome.stats == recorded.outcome.stats
        assert np.array_equal(rerun.unusable_grid(), recorded.runner.unusable_grid())
        assert replay_recorder.canonical_stream() == recorded.recorder.canonical_stream()

    def test_replay_from_disk(self, recorded):
        result = replay_recording(recorded.log)
        assert result.identical, result.summary()

    def test_log_round_trips_canonically(self, recorded):
        loaded = read_recording(recorded.log)
        assert [canonical(e.to_dict()) for e in loaded] == (
            recorded.recorder.canonical_stream()
        )

    def test_index_digest_covers_the_whole_stream(self, recorded):
        index = read_index(recorded.log)
        assert index["version"] == 1
        assert index["events"] == len(recorded.events)
        assert len(index["ticks"]) > 10
        digest = hashlib.sha256()
        for event in recorded.events:
            digest.update(canonical_bytes(event.to_dict()))
        assert index["digest"] == digest.hexdigest()
        # Each mark's digest covers exactly the prefix before its tick.
        mark = index["ticks"][len(index["ticks"]) // 2]
        prefix = hashlib.sha256()
        for event in recorded.events[: mark["event_id"]]:
            prefix.update(canonical_bytes(event.to_dict()))
        assert mark["digest"] == prefix.hexdigest()

    def test_stream_without_run_meta_is_not_replayable(self):
        orphan = [TraceEvent(kind="tick", seq=0, data={"time": 1.0})]
        with pytest.raises(ValueError, match="not replayable"):
            replay_events(orphan)


def _tamper(events, log_b):
    """Rewrite ``events`` to ``log_b`` with one mid-stream delivery's
    payload altered; returns the perturbed event."""
    deliveries = [e for e in events if e.kind == "msg_deliver"]
    target = min(deliveries, key=lambda e: abs(e.seq - len(events) // 2))
    tampered = TraceEvent(
        kind=target.kind,
        seq=target.seq,
        data={**dict(target.data), "msg": "tampered"},
        cause=target.cause,
    )
    sink = RecorderSink(log_b)
    for event in events:
        sink.record(tampered if event.seq == target.seq else event)
    sink.close()
    return tampered


class TestBisection:
    @pytest.fixture(scope="class")
    def perturbed(self, recorded, tmp_path_factory):
        log_b = tmp_path_factory.mktemp("perturbed") / "run_b.jsonl"
        tampered = _tamper(recorded.events, log_b)
        return SimpleNamespace(log=log_b, tampered=tampered)

    def test_stream_bisection_pinpoints_the_exact_event(self, recorded, perturbed):
        report = bisect_streams(recorded.events, read_recording(perturbed.log))
        assert not report.identical
        assert report.index == perturbed.tampered.seq
        assert report.event_a.kind == report.event_b.kind == "msg_deliver"
        assert report.event_b.data["msg"] == "tampered"
        assert f"first divergence at event {report.index}" in report.summary()

    def test_bisection_attaches_both_ancestries(self, recorded, perturbed):
        report = bisect_streams(recorded.events, read_recording(perturbed.log))
        for chain in (report.ancestry_a, report.ancestry_b):
            assert len(chain) >= 2  # at least the msg_send behind the delivery
            assert chain[-1].seq == report.index
            for parent, child in zip(chain, chain[1:]):
                assert child.cause == parent.seq
        rendered = report.render()
        assert "--- A:" in rendered and "--- B:" in rendered
        assert "tampered" in rendered

    def test_log_bisection_binary_searches_the_index(self, recorded, perturbed):
        report = bisect_logs(recorded.log, perturbed.log)
        assert not report.identical
        assert report.index == perturbed.tampered.seq
        ticks = read_index(recorded.log)["ticks"]
        assert 1 <= report.probes <= math.ceil(math.log2(len(ticks))) + 1

    def test_identical_logs(self, recorded):
        report = bisect_logs(recorded.log, recorded.log)
        assert report.identical
        assert report.probes >= 1
        assert "identical" in report.summary()

    def test_prefix_stream_reports_the_truncation_point(self, recorded):
        report = bisect_streams(recorded.events, recorded.events[:-10])
        assert not report.identical
        assert report.index == len(recorded.events) - 10
        assert report.event_b is None
        assert "continues past" in report.summary()


class TestLineage:
    def test_ancestry_is_root_first_and_consistent(self, recorded):
        delivery = next(e for e in recorded.events if e.kind == "msg_deliver")
        chain = ancestry(recorded.events, delivery.seq)
        assert chain[-1] is delivery
        assert chain[0].cause is None
        for parent, child in zip(chain, chain[1:]):
            assert child.cause == parent.seq

    def test_retransmit_chains_to_the_original_attempt(self, recorded):
        sends = {e.seq: e for e in recorded.events if e.kind == "msg_send"}
        chained = [e for e in sends.values() if e.cause in sends]
        assert chained, "5% loss over 8 chaos events never forced a retransmit?"

    def test_unknown_event_raises(self, recorded):
        with pytest.raises(KeyError):
            ancestry(recorded.events, len(recorded.events) + 5)

    def test_cycle_detection(self):
        loop = [
            TraceEvent(kind="msg_send", seq=0, data={}, cause=1),
            TraceEvent(kind="msg_deliver", seq=1, data={}, cause=0),
        ]
        with pytest.raises(ValueError, match="cycle"):
            ancestry(loop, 1)

    def test_render_lineage_shows_the_chain(self, recorded):
        delivery = next(e for e in recorded.events if e.kind == "msg_deliver")
        rendered = render_lineage(recorded.events, delivery.seq)
        lines = rendered.splitlines()
        assert len(lines) == len(ancestry(recorded.events, delivery.seq))
        assert "msg_deliver" in lines[-1]


class TestTimeTravel:
    @pytest.fixture(scope="class")
    def scripted(self):
        """A fully deterministic run whose only chaos is one late crash."""
        mesh = Mesh2D(8, 8)
        recorder = FlightRecorder()
        runner = ChaosRunner(
            mesh,
            faults=[(2, 2)],
            schedule=ChaosSchedule([ChaosEvent(40.0, "crash", (6, 6))]),
            recorder=recorder,
        )
        runner.run()
        return recorder.events

    def test_snapshot_before_the_crash(self, scripted):
        snapshot = state_at(scripted, 10.0)
        assert snapshot.faults == ((2, 2),)
        assert (6, 6) not in snapshot.unusable
        assert snapshot.events_processed > 0
        assert "t=" in snapshot.summary()

    def test_snapshot_after_the_crash(self, scripted):
        snapshot = state_at(scripted, 60.0)
        assert snapshot.faults == ((2, 2), (6, 6))
        assert (6, 6) in snapshot.unusable
        # Free nodes expose their four extended safety levels.
        coords = {coord for coord, _ in snapshot.levels}
        assert (0, 0) in coords and (2, 2) not in coords
        assert all(len(esl) == 4 for _, esl in snapshot.levels)

    def test_snapshots_are_monotone_in_time(self, scripted):
        early, late = state_at(scripted, 5.0), state_at(scripted, 60.0)
        assert early.events_processed < late.events_processed
        assert early.time <= late.time
