"""Unit tests for repro.mesh.frames."""

import pytest

from repro.mesh.frames import Frame
from repro.mesh.geometry import Direction, Quadrant, Rect


class TestForPair:
    @pytest.mark.parametrize(
        "dest, quadrant",
        [
            ((8, 9), Quadrant.I),
            ((2, 9), Quadrant.II),
            ((2, 1), Quadrant.III),
            ((8, 1), Quadrant.IV),
        ],
    )
    def test_destination_lands_in_local_quadrant_one(self, dest, quadrant):
        source = (5, 5)
        frame = Frame.for_pair(source, dest)
        assert frame.quadrant is quadrant
        lx, ly = frame.to_local(dest)
        assert lx >= 0 and ly >= 0
        assert frame.to_local(source) == (0, 0)

    def test_local_offsets_preserve_distance(self):
        source, dest = (5, 5), (2, 9)
        frame = Frame.for_pair(source, dest)
        lx, ly = frame.to_local(dest)
        assert lx + ly == abs(dest[0] - source[0]) + abs(dest[1] - source[1])


class TestRoundTrips:
    @pytest.mark.parametrize("flip_x", [False, True])
    @pytest.mark.parametrize("flip_y", [False, True])
    def test_coord_roundtrip(self, flip_x, flip_y):
        frame = Frame(origin=(7, 3), flip_x=flip_x, flip_y=flip_y)
        for coord in [(0, 0), (7, 3), (12, 9), (3, 15)]:
            assert frame.to_global(frame.to_local(coord)) == coord
            assert frame.to_local(frame.to_global(coord)) == coord

    @pytest.mark.parametrize("flip_x", [False, True])
    @pytest.mark.parametrize("flip_y", [False, True])
    def test_rect_roundtrip(self, flip_x, flip_y):
        frame = Frame(origin=(7, 3), flip_x=flip_x, flip_y=flip_y)
        rect = Rect(2, 6, 3, 6)
        assert frame.to_global_rect(frame.to_local_rect(rect)) == rect

    def test_direction_mapping_is_involution(self):
        frame = Frame(origin=(0, 0), flip_x=True, flip_y=True)
        for direction in Direction:
            assert frame.to_global_direction(frame.to_local_direction(direction)) is direction


class TestSemantics:
    def test_flip_x_swaps_east_west(self):
        frame = Frame(origin=(0, 0), flip_x=True)
        assert frame.to_local_direction(Direction.EAST) is Direction.WEST
        assert frame.to_local_direction(Direction.NORTH) is Direction.NORTH

    def test_esl_permutation_matches_direction_mapping(self):
        # Moving "local East" must read the level of the matching global
        # direction: with flip_x, local East is global West.
        esl = (10, 20, 30, 40)  # (E, S, W, N)
        frame = Frame(origin=(0, 0), flip_x=True)
        assert frame.to_local_esl(esl) == (30, 20, 10, 40)
        frame = Frame(origin=(0, 0), flip_y=True)
        assert frame.to_local_esl(esl) == (10, 40, 30, 20)
        frame = Frame(origin=(0, 0), flip_x=True, flip_y=True)
        assert frame.to_local_esl(esl) == (30, 40, 10, 20)

    def test_rect_reflection_preserves_shape(self):
        frame = Frame(origin=(5, 5), flip_x=True, flip_y=True)
        rect = Rect(7, 9, 1, 2)
        local = frame.to_local_rect(rect)
        assert (local.width, local.height) == (rect.width, rect.height)

    def test_step_in_local_frame_matches_global_step(self):
        # Stepping local-East from a local coordinate corresponds to stepping
        # the mapped global direction from the global coordinate.
        frame = Frame(origin=(5, 5), flip_x=True)
        node = (3, 7)
        local = frame.to_local(node)
        stepped_local = Direction.EAST.step(local)
        global_dir = frame.to_global_direction(Direction.EAST)
        assert frame.to_global(stepped_local) == global_dir.step(node)
