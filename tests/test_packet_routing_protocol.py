"""End-to-end pipeline on one simulated network: detection -> labelling ->
information formation -> packet delivery, all as message passing."""

import numpy as np

from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.packet import PacketStatus
from repro.routing.router import GreedyAdaptiveRouter
from repro.simulator.protocols.packet_routing import run_distributed_routing


def _unusable_set(blocks):
    return {
        (int(x), int(y)) for x, y in zip(*np.nonzero(blocks.unusable))
    }


class TestDistributedRouting:
    def test_single_packet_latency_equals_distance(self):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [])
        run = run_distributed_routing(
            mesh,
            GreedyAdaptiveRouter(mesh, blocks.unusable),
            set(),
            [((0, 0), (4, 3))],
        )
        assert run.delivered == 1
        packet = run.packets[0]
        assert packet.hops == 7
        assert run.delivery_times[packet.packet_id] == 7.0  # one latency per hop
        assert run.stats.messages == 7

    def test_latency_scales(self):
        mesh = Mesh2D(8, 8)
        blocks = build_faulty_blocks(mesh, [])
        run = run_distributed_routing(
            mesh,
            GreedyAdaptiveRouter(mesh, blocks.unusable),
            set(),
            [((0, 0), (3, 0))],
            latency=2.5,
        )
        assert run.delivery_times[run.packets[0].packet_id] == 7.5

    def test_wu_protocol_delivers_safe_traffic_minimally(self, rng):
        """The full pipeline claim: for every safe pair the distributed
        packets arrive in exactly D hops and D time units."""
        mesh = Mesh2D(24, 24)
        faults = uniform_faults(mesh, 40, rng)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        traffic = []
        while len(traffic) < 40:
            s = (int(rng.integers(0, 24)), int(rng.integers(0, 24)))
            d = (int(rng.integers(0, 24)), int(rng.integers(0, 24)))
            if s == d or blocks.is_unusable(s) or blocks.is_unusable(d):
                continue
            if is_safe(levels, s, d):
                traffic.append((s, d))
        run = run_distributed_routing(
            mesh, WuRouter(mesh, blocks), _unusable_set(blocks), traffic
        )
        assert run.delivered == len(traffic)
        for packet in run.packets:
            assert packet.status is PacketStatus.DELIVERED
            assert packet.hops == manhattan_distance(packet.source, packet.dest)
            assert run.delivery_times[packet.packet_id] == float(packet.hops)
        # Message count is exactly the sum of hop counts.
        assert run.stats.messages == sum(p.hops for p in run.packets)

    def test_greedy_drops_are_recorded(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        from repro.routing.router import x_first_tie_breaker

        router = GreedyAdaptiveRouter(
            mesh, blocks.unusable, tie_breaker=x_first_tie_breaker
        )
        run = run_distributed_routing(
            mesh, router, _unusable_set(blocks), [((5, 0), (5, 8))]
        )
        assert run.delivered == 0
        assert run.packets[0].status is PacketStatus.DROPPED
        assert "stuck" in (run.packets[0].drop_reason or "")

    def test_unusable_source_dropped_cleanly(self):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [(2, 2)])
        run = run_distributed_routing(
            mesh,
            GreedyAdaptiveRouter(mesh, blocks.unusable),
            _unusable_set(blocks),
            [((2, 2), (8, 8))],
        )
        assert run.dropped == 1
        assert "unusable" in (run.packets[0].drop_reason or "")

    def test_source_equals_dest(self):
        mesh = Mesh2D(6, 6)
        blocks = build_faulty_blocks(mesh, [])
        run = run_distributed_routing(
            mesh, GreedyAdaptiveRouter(mesh, blocks.unusable), set(), [((3, 3), (3, 3))]
        )
        assert run.delivered == 1
        assert run.delivery_times[run.packets[0].packet_id] == 0.0
