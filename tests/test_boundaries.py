"""Unit tests for boundary lines L1-L4 with joins."""

import numpy as np

from repro.core.boundaries import BoundaryMap, CanonicalBoundaryMap, Line
from repro.faults.blocks import build_faulty_blocks
from repro.mesh.geometry import Direction, Rect
from repro.mesh.topology import Mesh2D


def _bmap(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return BoundaryMap.for_blocks(blocks), blocks


class TestSingleBlockTraces:
    def test_l1_runs_west_from_exit_corner(self):
        mesh = Mesh2D(12, 12)
        bmap, blocks = _bmap(mesh, [(4, 4), (5, 5)])  # block [4:5, 4:5]
        canonical = bmap.canonical(False, False)
        # L1 row is y=3, from x=6 (the L1 ∩ L4 corner) down to x=0.
        for x in range(0, 7):
            tags = [t for t in canonical.tags_at((x, 3)) if t.line is Line.L1]
            assert len(tags) == 1
            if x == 6:
                assert tags[0].toward is None
            else:
                assert tags[0].toward is Direction.EAST

    def test_l3_runs_south_from_exit_corner(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 4), (5, 5)])
        canonical = bmap.canonical(False, False)
        for y in range(0, 7):
            tags = [t for t in canonical.tags_at((3, y)) if t.line is Line.L3]
            assert len(tags) == 1
            if y == 6:
                assert tags[0].toward is None
            else:
                assert tags[0].toward is Direction.NORTH

    def test_block_touching_south_edge_has_no_l1(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 0), (5, 1)])  # block [4:5, 0:1]
        canonical = bmap.canonical(False, False)
        l1_tags = [
            t
            for tags in canonical.annotations.values()
            for t in tags
            if t.line is Line.L1
        ]
        assert l1_tags == []

    def test_block_at_east_edge_l1_starts_inside_mesh(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(11, 5)])
        canonical = bmap.canonical(False, False)
        # The true exit corner (12, 4) is off-mesh, so the clipped start node
        # keeps the travel direction (consistent with the distributed
        # protocol); its critical region is empty anyway.
        tags = canonical.tags_at((11, 4))
        assert any(t.line is Line.L1 and t.toward is Direction.EAST for t in tags)
        assert canonical.forbidden_directions((11, 4), (11, 5)) == set()


class TestJoins:
    def test_l1_joins_l1_of_encountered_block(self):
        """Block i's L1 heading West hits block j and descends to j's L1."""
        mesh = Mesh2D(20, 20)
        # Block i = [10:11, 6:7]; its L1 row is y=5.
        # Block j = [4:5, 3:6] straddles y=5, so the trace must descend along
        # x=6 (j's East side) to y=2 (j's L1 row) and continue West.
        faults = [(10, 6), (11, 7), (4, 3), (5, 4), (4, 5), (5, 6)]
        bmap, blocks = _bmap(mesh, faults)
        assert {str(r) for r in blocks.rects()} == {"[10:11, 6:7]", "[4:5, 3:6]"}
        canonical = bmap.canonical(False, False)
        block_i = blocks.rects().index(Rect(10, 11, 6, 7))

        # On the descent column (x=6, y in 2..4): toward is NORTH.
        for y in (2, 3, 4):
            tags = [t for t in canonical.tags_at((6, y)) if t.block_index == block_i]
            assert tags and tags[0].line is Line.L1
            assert tags[0].toward is Direction.NORTH
        # West of block j on j's L1 row (y=2): toward is EAST.
        for x in (0, 2, 3):
            tags = [t for t in canonical.tags_at((x, 2)) if t.block_index == block_i]
            assert tags and tags[0].toward is Direction.EAST
        # Block i's own L1 row nodes West of i and East of j: toward EAST.
        for x in (7, 8, 9):
            tags = [t for t in canonical.tags_at((x, 5)) if t.block_index == block_i]
            assert tags and tags[0].toward is Direction.EAST

    def test_l3_joins_l3_of_encountered_block(self):
        mesh = Mesh2D(20, 20)
        # Block i = [6:7, 10:11]; L3 column x=5.
        # Block j = [3:6, 4:5] straddles x=5: trace crosses West along y=6
        # (j's L2 row) to x=2 (j's L3 column) and continues South.
        faults = [(6, 10), (7, 11), (3, 4), (4, 5), (5, 4), (6, 5)]
        bmap, blocks = _bmap(mesh, faults)
        assert {str(r) for r in blocks.rects()} == {"[6:7, 10:11]", "[3:6, 4:5]"}
        canonical = bmap.canonical(False, False)
        block_i = blocks.rects().index(Rect(6, 7, 10, 11))

        for x in (3, 4):  # crossing along y=6: toward EAST (back along line)
            tags = [t for t in canonical.tags_at((x, 6)) if t.block_index == block_i]
            assert tags and tags[0].line is Line.L3
            assert tags[0].toward is Direction.EAST
        for y in (0, 1, 3):  # j's L3 column below: toward NORTH
            tags = [t for t in canonical.tags_at((2, y)) if t.block_index == block_i]
            assert tags and tags[0].toward is Direction.NORTH

    def test_join_truncated_at_mesh_edge(self):
        mesh = Mesh2D(12, 12)
        # The encountered block touches the South edge: no L1 to join.
        faults = [(8, 4), (3, 0), (3, 1), (4, 2), (3, 3), (4, 4)]
        bmap, blocks = _bmap(mesh, faults)
        canonical = bmap.canonical(False, False)
        assert canonical.truncated_traces >= 1


class TestForbiddenDirections:
    def test_r6_forbids_north_on_l1(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 4), (5, 5)])  # block [4:5, 4:5]
        canonical = bmap.canonical(False, False)
        # Node on L1 left section; destination East of the block in its band.
        assert canonical.forbidden_directions((1, 3), (8, 5)) == {Direction.NORTH}
        # Destination above the block: non-critical.
        assert canonical.forbidden_directions((1, 3), (8, 7)) == set()
        # Destination West of the block's far side: non-critical.
        assert canonical.forbidden_directions((1, 3), (3, 7)) == set()
        # Destination on the L1 row itself: non-critical (paths to it never
        # rise above the row, so the block cannot interfere).
        assert canonical.forbidden_directions((1, 3), (8, 3)) == set()

    def test_r4_forbids_east_on_l3(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 4), (5, 5)])
        canonical = bmap.canonical(False, False)
        assert canonical.forbidden_directions((3, 1), (5, 8)) == {Direction.EAST}
        assert canonical.forbidden_directions((3, 1), (8, 8)) == set()
        assert canonical.forbidden_directions((3, 1), (3, 8)) == set()

    def test_exit_corner_is_unconstrained(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 4), (5, 5)])
        canonical = bmap.canonical(False, False)
        assert canonical.forbidden_directions((6, 3), (8, 5)) == set()

    def test_plain_nodes_unconstrained(self):
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(4, 4), (5, 5)])
        canonical = bmap.canonical(False, False)
        assert canonical.forbidden_directions((0, 0), (8, 8)) == set()

    def test_joined_straight_sections_forbid_north(self):
        """Nodes on the joined L1 row carry the upstream block's rule; the
        turn (descent) nodes stay unconstrained."""
        mesh = Mesh2D(20, 20)
        faults = [(10, 6), (11, 7), (4, 3), (5, 4), (4, 5), (5, 6)]
        bmap, blocks = _bmap(mesh, faults)  # blocks [10:11,6:7], [4:5,3:6]
        canonical = bmap.canonical(False, False)
        dest = (15, 7)  # in R6 of block [10:11, 6:7]
        # Straight joined section (on block j's L1 row, West of j).
        assert Direction.NORTH in canonical.forbidden_directions((1, 2), dest)
        # Straight section on block i's own L1 row, East of j.
        assert Direction.NORTH in canonical.forbidden_directions((8, 5), dest)
        # Descent (turn) nodes: both preferred directions stay legal.
        assert canonical.forbidden_directions((6, 3), dest) == set()
        assert canonical.forbidden_directions((6, 4), dest) == set()


class TestReflection:
    def test_involution(self):
        bmap = BoundaryMap(
            mesh=Mesh2D(10, 10),
            rects=[],
            unusable=np.zeros((10, 10), dtype=bool),
        )
        reflection = bmap.reflection(True, True)
        assert reflection.coord(reflection.coord((3, 7))) == (3, 7)
        assert reflection.direction(reflection.direction(Direction.EAST)) is Direction.EAST

    def test_reflected_map_guards_quadrant_iii(self):
        """For a SW-bound packet the mirrored lines guard the block."""
        mesh = Mesh2D(12, 12)
        bmap, _ = _bmap(mesh, [(6, 6), (7, 7)])  # block [6:7, 6:7]
        reflection = bmap.reflection(True, True)
        canonical = bmap.canonical(True, True)
        # Real node (10, 8): East of the block, inside its band, heading SW
        # toward (2, 7)... reflected space must force the stay-on rule.
        node_r = reflection.coord((10, 8))
        dest_r = reflection.coord((2, 7))
        forbidden = canonical.forbidden_directions(node_r, dest_r)
        assert forbidden  # critical in the mirrored frame

    def test_canonical_maps_cached(self):
        mesh = Mesh2D(10, 10)
        bmap, _ = _bmap(mesh, [(5, 5)])
        assert bmap.canonical(False, False) is bmap.canonical(False, False)
        assert bmap.canonical(True, False) is not bmap.canonical(False, False)
