"""Percentile histograms: correctness, determinism, and the tick cap."""

import numpy as np
import pytest

from repro.obs import MetricsSink, Tracer
from repro.obs.metrics import Histogram


class TestPercentileCorrectness:
    def test_known_uniform_distribution(self):
        h = Histogram()
        for value in range(1, 101):
            h.observe(value)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0
        assert h.percentile(50.0) == pytest.approx(50.5)
        assert h.percentile(95.0) == pytest.approx(95.05)
        assert h.percentile(99.0) == pytest.approx(99.01)

    def test_order_independent(self):
        ordered, shuffled = Histogram(), Histogram()
        values = list(range(1, 101))
        rng = np.random.default_rng(3)
        for value in values:
            ordered.observe(value)
        for value in rng.permutation(values):
            shuffled.observe(float(value))
        for q in (50.0, 95.0, 99.0):
            assert ordered.percentile(q) == pytest.approx(shuffled.percentile(q))

    def test_single_value(self):
        h = Histogram()
        h.observe(42.0)
        assert h.percentile(50.0) == 42.0
        assert h.percentile(99.0) == 42.0

    def test_interpolates_between_ranks(self):
        h = Histogram()
        for value in (0.0, 10.0):
            h.observe(value)
        assert h.percentile(50.0) == pytest.approx(5.0)
        assert h.percentile(25.0) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1.0)
        with pytest.raises(ValueError):
            h.percentile(100.5)

    def test_exact_within_reservoir_capacity(self):
        h = Histogram(reservoir_size=1000)
        for value in range(1000):
            h.observe(value)
        assert h.percentile(50.0) == pytest.approx(499.5)

    def test_summary_carries_percentiles(self):
        h = Histogram()
        for value in range(1, 101):
            h.observe(value)
        summary = h.summary()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["min"] == 1.0 and summary["max"] == 100.0


class TestEmptyHistogram:
    def test_summary_is_null_not_zero(self):
        """Satellite fix: an empty histogram must be distinguishable from
        one that observed zeros."""
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] is None
        assert summary["max"] is None
        assert summary["p50"] is None and summary["p95"] is None and summary["p99"] is None

    def test_zero_observation_is_not_null(self):
        h = Histogram()
        h.observe(0.0)
        summary = h.summary()
        assert summary["min"] == 0.0 and summary["max"] == 0.0
        assert summary["p50"] == 0.0

    def test_empty_percentile_is_none(self):
        assert Histogram().percentile(50.0) is None

    def test_table_renders_empty_routes_without_crashing(self):
        sink = MetricsSink()
        tracer = Tracer(sink)
        tracer.emit("route_failed", at=(0, 0), reason="stuck")
        table = sink.to_table()
        assert "routes" in table
        assert "n/a" in table  # empty hops histogram rendered explicitly


class TestReservoirSampling:
    def test_deterministic_under_seed(self):
        a, b = Histogram(reservoir_size=64), Histogram(reservoir_size=64)
        for value in range(10_000):
            a.observe(value)
            b.observe(value)
        for q in (50.0, 95.0, 99.0):
            assert a.percentile(q) == b.percentile(q)

    def test_reservoir_stays_bounded(self):
        h = Histogram(reservoir_size=64)
        for value in range(10_000):
            h.observe(value)
        assert len(h._reservoir) == 64
        assert h.count == 10_000

    def test_sampled_percentiles_stay_close(self):
        h = Histogram(reservoir_size=512)
        for value in range(20_000):
            h.observe(value)
        assert h.percentile(50.0) == pytest.approx(10_000, rel=0.15)
        assert h.percentile(95.0) == pytest.approx(19_000, rel=0.15)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)


class TestTickCap:
    """Satellite fix: the per-tick Counter must not grow without bound."""

    def _emit(self, sink: MetricsSink, ticks: int):
        tracer = Tracer(sink)
        for tick in range(ticks):
            tracer.emit("protocol_msg", msg="esl", time=tick, queue=1)

    def test_distinct_ticks_capped(self):
        sink = MetricsSink(tick_cap=10)
        self._emit(sink, 25)
        assert len(sink._messages_per_tick) == 10
        assert sink.tick_overflow == 15
        assert sink.message_counts["esl"] == 25  # totals stay exact

    def test_known_ticks_still_counted_past_cap(self):
        sink = MetricsSink(tick_cap=2)
        tracer = Tracer(sink)
        for tick in (0, 1, 2, 0, 1):
            tracer.emit("protocol_msg", msg="esl", time=tick, queue=0)
        assert sink._messages_per_tick == {0: 2, 1: 2}
        assert sink.tick_overflow == 1

    def test_overflow_in_snapshot_and_table(self):
        sink = MetricsSink(tick_cap=4)
        self._emit(sink, 9)
        snapshot = sink.snapshot()
        assert snapshot["protocol"]["messages_per_tick_overflow"] == 5
        assert "tick overflow" in sink.to_table()

    def test_no_overflow_under_cap(self):
        sink = MetricsSink()
        self._emit(sink, 50)
        assert sink.tick_overflow == 0
        assert sink.snapshot()["protocol"]["messages_per_tick_overflow"] == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsSink(tick_cap=0)
