"""Chaos engineering: unreliable channels, crash/revive, re-convergence.

Three layers of guarantees:

- **determinism**: a :class:`ChannelFaultPlan` is a pure function of its
  seed, and the per-send verdict stream does not depend on the verdicts
  themselves;
- **bit-identical defaults**: with no (or an inactive) plan, every
  protocol run produces exactly the state and stats it produced before
  the chaos layer existed;
- **convergence**: with active loss/duplication/corruption and mid-run
  crash/revive schedules, the hardened protocols plus stabilization
  pulses land on exactly the state the batch oracles compute for the
  final fault set.
"""

import os
import pathlib

import numpy as np
import pytest

from repro.chaos import (
    ChannelFaultPlan,
    ChaosEvent,
    ChaosRunner,
    ChaosSchedule,
    verify_convergence,
)
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Direction
from repro.mesh.topology import Mesh2D
from repro.simulator.engine import Engine
from repro.simulator.network import MeshNetwork
from repro.simulator.protocols import (
    run_block_formation,
    run_safety_propagation,
    run_boundary_distribution,
)
from repro.obs import FlightRecorder
from repro.obs.recorder import index_path_for
from repro.simulator.protocols.dynamic_update import DynamicMesh
from repro.simulator.protocols.reliable import ResilientProcess


def _gate_recorder(name: str) -> FlightRecorder | None:
    """Flight-record a gate run when ``REPRO_CHAOS_ARTIFACTS`` names a
    directory (CI sets it so a red gate ships the evidence)."""
    root = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if not root:
        return None
    outdir = pathlib.Path(root)
    outdir.mkdir(parents=True, exist_ok=True)
    return FlightRecorder(outdir / f"{name}.jsonl")


def _finish_gate_artifacts(recorder: FlightRecorder | None, report) -> None:
    """Close the recording; keep the log (plus the replay/bisection
    verdict) only for failing runs, so the artifact directory holds
    exactly the failures worth downloading."""
    if recorder is None:
        return
    recorder.close()
    if report.ok:
        recorder.path.unlink(missing_ok=True)
        index_path_for(recorder.path).unlink(missing_ok=True)
        return
    text = report.summary() + "\n"
    if report.bisection is not None:
        text += report.bisection.render() + "\n"
    verdict = recorder.path.with_name(recorder.path.name + ".bisection.txt")
    verdict.write_text(text, encoding="utf-8")


class TestChannelFaultPlan:
    def test_inactive_by_default(self):
        plan = ChannelFaultPlan()
        assert not plan.active
        assert plan.draw() == (False, False, False, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelFaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            ChannelFaultPlan(duplicate=-0.1)
        with pytest.raises(ValueError):
            ChannelFaultPlan(jitter=-1)

    def test_seed_determinism(self):
        a = ChannelFaultPlan(drop=0.3, duplicate=0.2, corrupt=0.1, jitter=3, seed=42)
        b = ChannelFaultPlan(drop=0.3, duplicate=0.2, corrupt=0.1, jitter=3, seed=42)
        assert [a.draw() for _ in range(200)] == [b.draw() for _ in range(200)]

    def test_reset_rewinds_the_stream(self):
        plan = ChannelFaultPlan(drop=0.5, seed=9)
        first = [plan.draw() for _ in range(50)]
        plan.reset()
        assert [plan.draw() for _ in range(50)] == first

    def test_verdict_stream_is_position_invariant(self):
        """Draw k consumes the same entropy whatever draws 1..k-1 said,
        so two plans differing only in probabilities stay aligned."""
        loose = ChannelFaultPlan(drop=0.9, duplicate=0.9, corrupt=0.9, seed=7)
        tight = ChannelFaultPlan(drop=0.0, duplicate=0.0, corrupt=0.0, jitter=0, seed=7)
        tight_probs = ChannelFaultPlan(drop=1e-12, seed=7)  # active, never fires
        for _ in range(100):
            loose.draw()
            tight.draw()
            tight_probs.draw()
        # After the same number of draws the underlying bit generators agree.
        assert (
            loose._rng.bit_generator.state["state"]
            == tight_probs._rng.bit_generator.state["state"]
        )


class TestChaosSchedule:
    def test_events_sorted_stably(self):
        events = [
            ChaosEvent(5.0, "crash", (1, 1)),
            ChaosEvent(2.0, "crash", (2, 2)),
            ChaosEvent(5.0, "revive", (1, 1)),
        ]
        schedule = ChaosSchedule(events)
        assert [e.time for e in schedule] == [2.0, 5.0, 5.0]
        # Equal-time events keep their scripted order.
        assert [e.action for e in schedule][1:] == ["crash", "revive"]
        assert schedule.horizon == 5.0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(1.0, "explode", (0, 0))
        with pytest.raises(ValueError):
            ChaosEvent(-1.0, "crash", (0, 0))

    def test_final_faults_replay(self):
        schedule = ChaosSchedule(
            [
                ChaosEvent(1.0, "crash", (1, 1)),
                ChaosEvent(2.0, "crash", (2, 2)),
                ChaosEvent(3.0, "revive", (1, 1)),
            ]
        )
        assert schedule.final_faults() == {(2, 2)}
        assert schedule.final_faults([(4, 4)]) == {(2, 2), (4, 4)}

    def test_random_respects_forbidden_and_distinct_victims(self):
        mesh = Mesh2D(8, 8)
        rng = np.random.default_rng(3)
        forbidden = {(x, y) for x in range(4) for y in range(8)}
        schedule = ChaosSchedule.random(mesh, rng, events=10, forbidden=forbidden)
        victims = [e.coord for e in schedule if e.action == "crash"]
        assert len(victims) == len(set(victims))
        assert not set(victims) & forbidden
        for event in schedule:
            assert 1.0 <= event.time

    def test_random_raises_when_region_too_small(self):
        mesh = Mesh2D(3, 3)
        rng = np.random.default_rng(0)
        forbidden = {(x, y) for x in range(3) for y in range(3)}
        with pytest.raises(RuntimeError):
            ChaosSchedule.random(mesh, rng, events=4, forbidden=forbidden)


class TestDefaultPathBitIdentical:
    """chaos=None and an inactive plan must not perturb anything."""

    @pytest.fixture()
    def scenario(self):
        mesh = Mesh2D(16, 16)
        faults = uniform_faults(mesh, 14, np.random.default_rng(11))
        blocks = build_faulty_blocks(mesh, faults)
        return mesh, faults, blocks

    def test_block_formation(self, scenario):
        mesh, faults, _ = scenario
        base = run_block_formation(mesh, faults)
        inert = run_block_formation(mesh, faults, chaos=ChannelFaultPlan())
        assert np.array_equal(base.unusable, inert.unusable)
        assert base.stats == inert.stats

    def test_safety_propagation(self, scenario):
        mesh, _, blocks = scenario
        base = run_safety_propagation(mesh, blocks.unusable)
        inert = run_safety_propagation(mesh, blocks.unusable, chaos=ChannelFaultPlan())
        for grid in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(base.levels, grid), getattr(inert.levels, grid)
            )
        assert base.stats == inert.stats

    def test_boundary_distribution(self, scenario):
        mesh, _, blocks = scenario
        base = run_boundary_distribution(mesh, blocks.rects(), blocks.unusable)
        inert = run_boundary_distribution(
            mesh, blocks.rects(), blocks.unusable, chaos=ChannelFaultPlan()
        )
        assert base.annotations == inert.annotations
        assert base.stats == inert.stats

    def test_inactive_plan_does_not_harden(self, scenario):
        mesh, faults, _ = scenario
        result = run_block_formation(mesh, faults, chaos=ChannelFaultPlan())
        assert result.stats.retried == 0
        assert result.stats.lost == 0

    def test_active_chaos_rejects_legacy_delivery(self):
        mesh = Mesh2D(4, 4)
        plan = ChannelFaultPlan(drop=0.1)
        with pytest.raises(ValueError, match="fast delivery"):
            MeshNetwork(
                mesh, Engine(), lambda c, n: _Idle(c, n),
                delivery="legacy", chaos=plan,
            )


class _Idle(ResilientProcess):
    def start(self):
        pass

    def handle_message(self, message):
        pass


class TestHardenedProtocolsUnderLoss:
    """Each protocol, hardened, converges to its oracle despite chaos."""

    @pytest.mark.parametrize("drop", [0.02, 0.08])
    def test_block_formation_converges(self, drop):
        mesh = Mesh2D(16, 16)
        faults = uniform_faults(mesh, 18, np.random.default_rng(5))
        plan = ChannelFaultPlan(drop=drop, duplicate=0.03, corrupt=0.02, seed=1)
        result = run_block_formation(mesh, faults, chaos=plan)
        expected = build_faulty_blocks(mesh, faults).unusable
        assert np.array_equal(result.unusable, expected)
        assert result.stats.lost > 0  # the chaos actually fired

    @pytest.mark.parametrize("drop", [0.02, 0.08])
    def test_safety_propagation_converges(self, drop):
        mesh = Mesh2D(16, 16)
        faults = uniform_faults(mesh, 18, np.random.default_rng(6))
        blocks = build_faulty_blocks(mesh, faults)
        plan = ChannelFaultPlan(drop=drop, duplicate=0.03, jitter=2, seed=2)
        result = run_safety_propagation(mesh, blocks.unusable, chaos=plan)
        oracle = compute_safety_levels(mesh, blocks.unusable)
        free = ~blocks.unusable
        for grid in ("east", "south", "west", "north"):
            got = getattr(result.levels, grid)
            want = getattr(oracle, grid)
            assert np.array_equal(got[free], want[free])

    def test_boundary_distribution_converges(self):
        mesh = Mesh2D(16, 16)
        faults = uniform_faults(mesh, 14, np.random.default_rng(7))
        blocks = build_faulty_blocks(mesh, faults)
        plan = ChannelFaultPlan(drop=0.05, duplicate=0.02, corrupt=0.02, seed=3)
        reliable = run_boundary_distribution(mesh, blocks.rects(), blocks.unusable)
        chaotic = run_boundary_distribution(
            mesh, blocks.rects(), blocks.unusable, chaos=plan
        )
        assert chaotic.annotations == reliable.annotations

    def test_chaos_counters_account_for_traffic(self):
        mesh = Mesh2D(12, 12)
        faults = uniform_faults(mesh, 12, np.random.default_rng(8))
        plan = ChannelFaultPlan(drop=0.1, duplicate=0.1, seed=4)
        stats = run_block_formation(mesh, faults, chaos=plan).stats
        assert stats.lost > 0
        assert stats.duplicated > 0
        assert stats.retried > 0
        assert "chaos" in str(stats)


class TestCrashRevive:
    def test_dynamic_mesh_revive_matches_oracle(self):
        mesh = Mesh2D(12, 12)
        dynamic = DynamicMesh(mesh, hardened=True)
        for fault in [(4, 4), (4, 5), (5, 4), (9, 2)]:
            dynamic.inject_fault(fault)
        dynamic.revive_node((4, 5))
        remaining = [(4, 4), (5, 4), (9, 2)]
        assert sorted(dynamic.faults) == remaining
        oracle_blocks = build_faulty_blocks(mesh, remaining)
        assert np.array_equal(dynamic.unusable_grid(), oracle_blocks.unusable)
        oracle_levels = compute_safety_levels(mesh, oracle_blocks.unusable)
        got = dynamic.safety_levels()
        free = ~oracle_blocks.unusable
        for grid in ("east", "south", "west", "north"):
            assert np.array_equal(
                getattr(got, grid)[free], getattr(oracle_levels, grid)[free]
            )

    def test_revive_requires_prior_injection(self):
        dynamic = DynamicMesh(Mesh2D(6, 6))
        with pytest.raises(ValueError):
            dynamic.revive_node((2, 2))

    def test_crash_only_schedule(self):
        mesh = Mesh2D(10, 10)
        schedule = ChaosSchedule(
            [ChaosEvent(float(t), "crash", (t, t)) for t in range(1, 5)]
        )
        report = verify_convergence(mesh, faults=[(8, 1)], schedule=schedule)
        assert report.ok
        assert set(report.final_faults) == {(8, 1), (1, 1), (2, 2), (3, 3), (4, 4)}

    def test_runner_skips_invalid_events(self):
        mesh = Mesh2D(8, 8)
        schedule = ChaosSchedule(
            [
                ChaosEvent(1.0, "crash", (3, 3)),
                ChaosEvent(2.0, "crash", (3, 3)),   # already down: skipped
                ChaosEvent(3.0, "revive", (5, 5)),  # never crashed: skipped
                ChaosEvent(4.0, "revive", (0, 0)),  # initial fault: skipped
            ]
        )
        runner = ChaosRunner(mesh, faults=[(0, 0)], schedule=schedule)
        outcome = runner.run()
        assert outcome.applied == 1
        assert outcome.skipped == 3
        assert outcome.crashed == ((3, 3),)
        assert set(outcome.final_faults) == {(0, 0), (3, 3)}

    def test_runner_is_single_use(self):
        runner = ChaosRunner(Mesh2D(4, 4))
        runner.run()
        with pytest.raises(RuntimeError):
            runner.run()


class TestConvergenceVerifier:
    def test_quiet_run_converges(self):
        mesh = Mesh2D(10, 10)
        report = verify_convergence(mesh, faults=[(3, 3), (3, 4), (7, 7)])
        assert report.ok
        assert report.pairs_checked > 0
        assert "CONVERGED" in report.summary()

    def test_incremental_oracle_agrees_with_full(self):
        """The delta-maintained oracle replays every applied crash/revive
        and must reach the same verdict as the from-scratch rebuild."""
        mesh = Mesh2D(12, 12)
        rng = np.random.default_rng(3)
        faults = uniform_faults(mesh, 8, rng)
        schedule = ChaosSchedule.random(mesh, rng, events=8, forbidden=set(faults))
        full = verify_convergence(mesh, faults, schedule=schedule, seed=7)
        incremental = verify_convergence(
            mesh, faults, schedule=schedule, seed=7, maintenance="incremental"
        )
        assert full.ok and incremental.ok
        assert incremental.final_faults == full.final_faults
        assert incremental.pairs_checked == full.pairs_checked

    def test_rejects_unknown_maintenance(self):
        with pytest.raises(ValueError, match="maintenance"):
            verify_convergence(Mesh2D(6, 6), maintenance="lazy")

    def test_runner_records_applied_events_in_order(self):
        mesh = Mesh2D(10, 10)
        rng = np.random.default_rng(5)
        schedule = ChaosSchedule.random(mesh, rng, events=6)
        runner = ChaosRunner(mesh, schedule=schedule)
        outcome = runner.run()
        assert len(runner.applied_events) == outcome.applied
        crashes = [e.coord for e in runner.applied_events if e.action == "crash"]
        revives = [e.coord for e in runner.applied_events if e.action == "revive"]
        assert crashes == list(outcome.crashed)
        assert revives == list(outcome.revived)

    def test_report_surfaces_mismatch_details(self):
        # Sanity-check the report plumbing rather than the happy path:
        # a fabricated mismatch tuple round-trips through the summary.
        mesh = Mesh2D(6, 6)
        report = verify_convergence(mesh, faults=[(2, 2)])
        assert report.block_mismatches == ()
        assert report.esl_mismatches == ()
        assert report.safety_mismatches == ()

    @pytest.mark.chaos
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("drop", [0.01, 0.05])
    def test_reconverges_under_loss_and_churn(self, seed, drop):
        """The acceptance gate: 10-event schedules, two loss rates, three
        seeds -- ESLs and blocks must re-converge to ground truth."""
        mesh = Mesh2D(14, 14)
        rng = np.random.default_rng(seed)
        faults = uniform_faults(mesh, 10, rng)
        plan = ChannelFaultPlan(
            drop=drop, duplicate=0.02, corrupt=0.02, jitter=1, seed=seed
        )
        schedule = ChaosSchedule.random(
            mesh, rng, events=10, forbidden=set(faults)
        )
        recorder = _gate_recorder(f"gate_seed{seed}_drop{int(drop * 100):02d}pct")
        report = verify_convergence(
            mesh, faults, plan, schedule, seed=seed, recorder=recorder
        )
        _finish_gate_artifacts(recorder, report)
        assert report.ok, report.summary()
        assert report.outcome.stats.lost > 0


class TestGateArtifacts:
    """The CI hook around the chaos gate: record when asked, keep only
    failing evidence."""

    def test_disabled_without_the_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_ARTIFACTS", raising=False)
        assert _gate_recorder("probe") is None
        _finish_gate_artifacts(None, None)  # must tolerate the disabled case

    def test_passing_run_leaves_no_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_ARTIFACTS", str(tmp_path))
        recorder = _gate_recorder("probe")
        assert recorder is not None
        report = verify_convergence(Mesh2D(6, 6), faults=[(2, 2)], recorder=recorder)
        _finish_gate_artifacts(recorder, report)
        assert report.ok
        assert list(tmp_path.iterdir()) == []

    def test_failing_run_keeps_log_index_and_verdict(self, tmp_path, monkeypatch):
        import dataclasses

        monkeypatch.setenv("REPRO_CHAOS_ARTIFACTS", str(tmp_path))
        recorder = _gate_recorder("probe")
        report = verify_convergence(Mesh2D(6, 6), faults=[(2, 2)], recorder=recorder)
        # Fabricate a red gate: the artifacts must survive for upload.
        failing = dataclasses.replace(report, blocks_ok=False)
        _finish_gate_artifacts(recorder, failing)
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"probe.jsonl", "probe.jsonl.idx", "probe.jsonl.bisection.txt"}
        verdict = (tmp_path / "probe.jsonl.bisection.txt").read_text()
        assert "DIVERGED" in verdict
        # The kept log is a valid, replayable recording.
        from repro.obs import replay_recording

        assert replay_recording(tmp_path / "probe.jsonl").identical


class TestNetworkPrimitives:
    def test_fail_and_restore_node_roundtrip(self):
        mesh = Mesh2D(5, 5)
        engine = Engine()
        network = MeshNetwork(mesh, engine, lambda c, n: _Idle(c, n))
        process = network.nodes[(2, 2)]
        popped = network.fail_node((2, 2))
        assert popped is process
        assert (2, 2) in network.faulty
        assert not network.channel_up[2, 2].any()
        restored = network.restore_node((2, 2), lambda c, n: _Idle(c, n))
        assert network.nodes[(2, 2)] is restored
        assert (2, 2) not in network.faulty
        assert network.channel_up[2, 2].all()

    def test_restore_keeps_links_to_faulty_neighbours_down(self):
        mesh = Mesh2D(5, 5)
        network = MeshNetwork(mesh, Engine(), lambda c, n: _Idle(c, n))
        network.fail_node((2, 2))
        network.fail_node((2, 3))
        network.restore_node((2, 2), lambda c, n: _Idle(c, n))
        x, y = 2, 2
        di_north = {d: i for i, d in enumerate(
            (Direction.EAST, Direction.SOUTH, Direction.WEST, Direction.NORTH)
        )}[Direction.NORTH]
        assert not network.channel_up[x, y, di_north]  # (2,3) still dead
        assert network.channel_up[x, y].sum() == 3

    def test_fail_node_rejects_double_fault(self):
        network = MeshNetwork(Mesh2D(4, 4), Engine(), lambda c, n: _Idle(c, n))
        network.fail_node((1, 1))
        with pytest.raises(ValueError):
            network.fail_node((1, 1))
