"""Edge-case coverage across modules: degenerate meshes, boundary rows,
empty workloads, exhausted budgets -- the inputs a user will eventually
feed the library by accident."""

import numpy as np
import pytest

from repro.core.boundaries import BoundaryMap
from repro.core.conditions import is_safe
from repro.core.routing import WuRouter, route_with_decision
from repro.core.conditions import Decision, DecisionKind
from repro.core.safety import UNBOUNDED, compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D
from repro.routing.router import GreedyAdaptiveRouter, RoutingError
from repro.simulator.channels import Channel
from repro.simulator.engine import Engine
from repro.simulator.traffic import PathPolicy, TrafficStats, run_workload


class TestDegenerateMeshes:
    def test_one_by_one_mesh(self):
        mesh = Mesh2D(1, 1)
        assert mesh.size == 1
        assert mesh.neighbors((0, 0)) == []
        blocks = build_faulty_blocks(mesh, [])
        levels = compute_safety_levels(mesh, blocks.unusable)
        assert is_safe(levels, (0, 0), (0, 0))

    def test_linear_array(self):
        """A 1xN mesh degenerates to a line; everything still works."""
        mesh = Mesh2D(8, 1)
        blocks = build_faulty_blocks(mesh, [(4, 0)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        assert levels.esl((0, 0)) == (3, UNBOUNDED, UNBOUNDED, UNBOUNDED)
        assert is_safe(levels, (0, 0), (3, 0))
        assert not is_safe(levels, (0, 0), (5, 0))
        assert not minimal_path_exists(blocks.unusable, (0, 0), (5, 0))
        path = WuRouter(mesh, blocks).route((0, 0), (3, 0))
        assert path.is_minimal

    def test_fully_faulty_row_splits_mesh(self):
        mesh = Mesh2D(6, 6)
        blocks = build_faulty_blocks(mesh, [(x, 3) for x in range(6)])
        assert not minimal_path_exists(blocks.unusable, (0, 0), (5, 5))
        levels = compute_safety_levels(mesh, blocks.unusable)
        assert not is_safe(levels, (0, 0), (5, 5))


class TestBoundaryRowScenarios:
    def test_source_adjacent_to_block(self):
        """A source directly on a block's L1/L3 lines still routes."""
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])  # block [4:5,4:5]
        levels = compute_safety_levels(mesh, blocks.unusable)
        router = WuRouter(mesh, blocks)
        for source in [(3, 3), (3, 4), (4, 3), (3, 5), (5, 3)]:
            for dest in [(9, 5), (5, 9), (9, 9)]:
                if not is_safe(levels, source, dest):
                    continue
                path = router.route(source, dest)
                assert path.is_minimal and path.avoids(blocks.unusable)

    def test_destination_adjacent_to_block(self):
        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(4, 4), (5, 5)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        router = WuRouter(mesh, blocks)
        for dest in [(6, 4), (6, 5), (4, 6), (5, 6), (3, 4), (4, 3)]:
            if is_safe(levels, (0, 0), dest):
                path = router.route((0, 0), dest)
                assert path.is_minimal and path.avoids(blocks.unusable)

    def test_block_filling_mesh_corner(self):
        mesh = Mesh2D(10, 10)
        blocks = build_faulty_blocks(mesh, [(8, 8), (9, 9)])  # block [8:9, 8:9]
        levels = compute_safety_levels(mesh, blocks.unusable)
        # The far corner is inside the block; its neighbours are reachable.
        assert is_safe(levels, (0, 0), (7, 9))
        path = WuRouter(mesh, blocks).route((0, 0), (7, 9))
        assert path.is_minimal


class TestRouterGuards:
    def test_hop_limit(self):
        mesh = Mesh2D(5, 5)

        class Circler(GreedyAdaptiveRouter):
            def next_hop(self, current, dest):  # never converges
                return (current[0], (current[1] + 1) % 5) if current[1] < 4 else (
                    current[0],
                    0,
                )

        router = Circler(mesh, np.zeros((5, 5), dtype=bool))
        with pytest.raises(RoutingError):
            router.route((0, 0), (4, 4), max_hops=10)

    def test_route_to_self_is_empty(self):
        mesh = Mesh2D(5, 5)
        router = GreedyAdaptiveRouter(mesh, np.zeros((5, 5), dtype=bool))
        path = router.route((2, 2), (2, 2))
        assert path.hops == 0

    def test_route_with_unsafe_decision_raises(self):
        mesh = Mesh2D(6, 6)
        blocks = build_faulty_blocks(mesh, [])
        decision = Decision(DecisionKind.UNSAFE, (0, 0), (3, 3))
        with pytest.raises(RoutingError):
            route_with_decision(WuRouter(mesh, blocks), decision)


class TestEngineAndChannels:
    def test_until_and_budget_compose(self):
        engine = Engine()
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule(t, lambda: None)
        assert engine.run(until=2.5, max_events=10) == 2
        assert engine.pending == 2

    def test_channel_str_and_down(self):
        engine = Engine()
        sink = []
        channel = Channel(
            src=(0, 0),
            dst=(1, 0),
            direction=__import__("repro.mesh.geometry", fromlist=["Direction"]).Direction.EAST,
            latency=1.0,
            engine=engine,
            deliver=lambda dst, msg: sink.append(msg),
        )
        assert "up" in str(channel)
        channel.take_down()
        assert "down" in str(channel)
        from repro.simulator.messages import Message

        channel.send(Message(src=(0, 0), dst=(1, 0), kind="x"))
        assert channel.messages_dropped == 1
        engine.run()
        assert sink == []

    def test_message_str(self):
        from repro.simulator.messages import Message

        message = Message(src=(0, 0), dst=(0, 1), kind="esl", payload=3)
        assert "esl" in str(message)


class TestTrafficEdgeCases:
    def test_empty_workload(self):
        mesh = Mesh2D(4, 4)
        policy = GreedyAdaptiveRouter(mesh, np.zeros((4, 4), dtype=bool))
        stats = run_workload(mesh, policy, [])
        assert stats.offered == 0
        assert stats.delivery_rate == 0.0
        assert stats.average_latency == 0.0
        assert stats.average_stretch == 0.0

    def test_cycle_limit_drops_survivors(self):
        mesh = Mesh2D(8, 8)
        policy = GreedyAdaptiveRouter(mesh, np.zeros((8, 8), dtype=bool))
        stats = run_workload(mesh, policy, [((0, 0), (7, 7), 0)], max_cycles=3)
        assert stats.dropped == 1
        assert stats.latencies == []
        assert stats.total_cycles == 3

    def test_path_policy_route_failure_drops_at_injection(self):
        mesh = Mesh2D(8, 8)
        blocks = build_faulty_blocks(mesh, [(4, y) for y in range(8)])
        from repro.routing.detour import DetourRouter

        policy = PathPolicy(route=DetourRouter(mesh, blocks).route)
        stats = run_workload(mesh, policy, [((0, 4), (7, 4), 0)])
        assert stats.dropped == 1

    def test_path_policy_cache_reused(self):
        mesh = Mesh2D(8, 8)
        calls = []

        def fake_route(source, dest):
            calls.append((source, dest))
            from repro.routing.path import Path

            return Path.of([source, (source[0] + 1, source[1])])

        policy = PathPolicy(route=fake_route)
        policy.path_for((0, 0), (1, 0))
        policy.path_for((0, 0), (1, 0))
        assert len(calls) == 1

    def test_stats_str(self):
        stats = TrafficStats(offered=2, delivered=1, dropped=1, total_cycles=9)
        stats.latencies = [4]
        stats.hop_counts = [4]
        stats.minimal_hop_counts = [4]
        text = str(stats)
        assert "1/2 delivered" in text and "stretch" in text


class TestSweeps:
    def test_mesh_size_sweep_smoke(self):
        from repro.experiments.sweeps import mesh_size_sweep

        series = mesh_size_sweep(
            sides=(30, 40), patterns_per_side=2, destinations_per_pattern=5
        )
        assert series.xs == [30.0, 40.0]
        assert set(series.series) == {"safe_source", "ext1_min", "existence"}
        for name in series.series:
            for estimate in series.series[name]:
                assert 0.0 <= estimate.value <= 1.0


class TestBoundaryMapMisc:
    def test_boundary_map_without_blocks(self):
        mesh = Mesh2D(8, 8)
        blocks = build_faulty_blocks(mesh, [])
        bmap = BoundaryMap.for_blocks(blocks)
        canonical = bmap.canonical(False, False)
        assert canonical.annotations == {}
        assert canonical.forbidden_directions((3, 3), (7, 7)) == set()

    def test_adjacent_blocks_same_row_boundaries(self):
        """Two blocks with a one-column gap: both L3 lines coexist on their
        own columns, and routing between them stays minimal."""
        mesh = Mesh2D(14, 14)
        blocks = build_faulty_blocks(mesh, [(4, 6), (8, 6)])
        levels = compute_safety_levels(mesh, blocks.unusable)
        router = WuRouter(mesh, blocks)
        # Through the gap column (x=6 between blocks at x=4 and x=8... the
        # gap is 2 wide here; route through it).
        for source, dest in [((5, 2), (7, 10)), ((6, 0), (6, 13))]:
            if is_safe(levels, source, dest):
                path = router.route(source, dest)
                assert path.is_minimal and path.avoids(blocks.unusable)
