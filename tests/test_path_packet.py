"""Unit tests for Path and Packet records."""

import numpy as np
import pytest

from repro.mesh.geometry import Direction
from repro.routing.packet import Packet, PacketStatus
from repro.routing.path import Path


class TestPath:
    def test_minimal_path(self):
        path = Path.of([(0, 0), (1, 0), (1, 1), (2, 1)])
        assert path.hops == 3
        assert path.is_minimal
        assert not path.is_sub_minimal
        assert path.detours == 0
        assert path.directions() == [Direction.EAST, Direction.NORTH, Direction.EAST]

    def test_sub_minimal_path(self):
        # One detour West, then across: D = 2, hops = 4.
        path = Path.of([(1, 0), (0, 0), (0, 1), (1, 1), (2, 1)])
        assert not path.is_minimal
        assert path.is_sub_minimal
        assert path.detours == 1

    def test_single_node(self):
        path = Path.of([(3, 3)])
        assert path.hops == 0
        assert path.is_minimal
        assert path.source == path.dest == (3, 3)

    def test_invalid_paths(self):
        with pytest.raises(ValueError):
            Path.of([])
        with pytest.raises(ValueError):
            Path.of([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            Path.of([(0, 0), (0, 0)])

    def test_avoids(self):
        blocked = np.zeros((4, 4), dtype=bool)
        path = Path.of([(0, 0), (1, 0), (2, 0)])
        assert path.avoids(blocked)
        blocked[1, 0] = True
        assert not path.avoids(blocked)

    def test_concat(self):
        a = Path.of([(0, 0), (1, 0)])
        b = Path.of([(1, 0), (1, 1)])
        joined = a.concat(b)
        assert joined.nodes == ((0, 0), (1, 0), (1, 1))
        with pytest.raises(ValueError):
            b.concat(a)

    def test_iteration_and_len(self):
        path = Path.of([(0, 0), (0, 1)])
        assert list(path) == [(0, 0), (0, 1)]
        assert len(path) == 2

    def test_str_mentions_kind(self):
        assert "minimal" in str(Path.of([(0, 0), (1, 0)]))


class TestPacket:
    def test_lifecycle(self):
        packet = Packet(source=(0, 0), dest=(1, 1))
        assert packet.status is PacketStatus.IN_FLIGHT
        assert packet.current == (0, 0)
        packet.record_hop((1, 0))
        assert packet.hops == 1
        packet.record_hop((1, 1))
        assert packet.status is PacketStatus.DELIVERED
        assert packet.trace == [(0, 0), (1, 0), (1, 1)]

    def test_drop(self):
        packet = Packet(source=(0, 0), dest=(5, 5))
        packet.drop("stuck")
        assert packet.status is PacketStatus.DROPPED
        assert packet.drop_reason == "stuck"
        with pytest.raises(RuntimeError):
            packet.record_hop((1, 0))

    def test_unique_ids(self):
        a = Packet(source=(0, 0), dest=(1, 1))
        b = Packet(source=(0, 0), dest=(1, 1))
        assert a.packet_id != b.packet_id
