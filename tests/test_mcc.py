"""Unit tests for the MCC model (Definition 2), against the paper's
Figure 1 worked example."""

import numpy as np
import pytest

from repro.faults.blocks import build_faulty_blocks
from repro.faults.mcc import (
    MCCType,
    NodeStatus,
    build_mccs,
    build_status_pairs,
    label_statuses,
)
from repro.mesh.geometry import Quadrant, Rect
from repro.mesh.topology import Mesh2D

from tests.conftest import FIGURE1_FAULTS

MESH10 = Mesh2D(10, 10)


@pytest.fixture
def type_one():
    return build_mccs(MESH10, FIGURE1_FAULTS, MCCType.TYPE_ONE)


@pytest.fixture
def type_two():
    return build_mccs(MESH10, FIGURE1_FAULTS, MCCType.TYPE_TWO)


class TestFigure1Example:
    """Paper Figure 1 (b) and (c): the MCCs of the [2:6, 3:6] block.

    Node-status claims in the paper's prose: (2,6) is (fault-free,
    disabled), (4,5) is (disabled, disabled), (2,3) is (disabled,
    fault-free).  The prose also claims (4,3) is (fault-free, fault-free),
    but that is a typo: (4,3)'s North neighbour (4,4) and West neighbour
    (3,3) are both *faulty*, so a quadrant-II minimal route entering (4,3)
    must leave East or South -- by Definition 2 it is useless for type two.
    We assert the definition, not the typo.
    """

    def test_type_one_removes_nw_and_se_corner_sections(self, type_one):
        # SE corner section of the block stays usable ...
        for coord in [(4, 3), (5, 3), (6, 3)]:
            assert not type_one.is_blocked(coord)
        # ... as does the NW corner section.
        assert not type_one.is_blocked((2, 6))
        # The NE corner section is can't-reach / blocked.
        for coord in [(4, 5), (4, 6), (5, 6), (6, 5), (6, 6), (3, 5)]:
            assert type_one.is_blocked(coord)
        # The SW corner section is useless / blocked.
        for coord in [(2, 3), (2, 4)]:
            assert type_one.is_blocked(coord)

    def test_type_two_removes_sw_and_ne_corner_sections(self, type_two):
        for coord in [(2, 3), (2, 4)]:  # SW stays usable
            assert not type_two.is_blocked(coord)
        for coord in [(4, 6), (5, 6), (6, 6), (6, 5)]:  # NE stays usable
            assert not type_two.is_blocked(coord)
        for coord in [(4, 3), (5, 3), (6, 3)]:  # SE section blocked
            assert type_two.is_blocked(coord)
        assert type_two.is_blocked((2, 6))  # NW section blocked

    def test_paper_status_pairs(self, type_one, type_two):
        def pair(coord):
            return (type_one.is_blocked(coord), type_two.is_blocked(coord))

        assert pair((2, 6)) == (False, True)
        assert pair((4, 5)) == (True, True)
        assert pair((2, 3)) == (True, False)
        # The corrected (4, 3): fault-free for type one, useless for type two.
        assert pair((4, 3)) == (False, True)
        assert type_two.status_at((4, 3)) is NodeStatus.USELESS

    def test_specific_labels_type_one(self, type_one):
        assert type_one.status_at((2, 4)) is NodeStatus.USELESS
        assert type_one.status_at((2, 3)) is NodeStatus.USELESS
        assert type_one.status_at((4, 5)) is NodeStatus.CANT_REACH
        assert type_one.status_at((6, 6)) is NodeStatus.CANT_REACH
        assert type_one.status_at((3, 3)) is NodeStatus.FAULTY
        assert type_one.status_at((0, 0)) is NodeStatus.FAULT_FREE

    def test_dual_label_node_reports_useless(self, type_two):
        # (3,5) satisfies both closures for type two; one status is reported
        # but the node is blocked either way.
        assert type_two.is_blocked((3, 5))
        assert type_two.status_at((3, 5)) is NodeStatus.USELESS

    def test_mcc_smaller_than_faulty_block(self, type_one, type_two):
        block = build_faulty_blocks(MESH10, FIGURE1_FAULTS)
        assert type_one.num_disabled == 8
        assert type_two.num_disabled == 6
        assert block.num_disabled == 12
        assert type_one.num_disabled < block.num_disabled
        assert type_two.num_disabled < block.num_disabled

    def test_single_connected_component(self, type_one):
        assert len(type_one) == 1
        component = type_one.components[0]
        assert component.rect == Rect(2, 6, 3, 6)
        assert component.size == 8 + 8

    def test_components_are_orthogonally_convex(self, type_one, type_two):
        for mcc_set in (type_one, type_two):
            for component in mcc_set:
                assert component.is_orthogonally_convex()


class TestClosureSemantics:
    def test_no_faults_no_labels(self):
        mccs = build_mccs(Mesh2D(6, 6), [], MCCType.TYPE_ONE)
        assert len(mccs) == 0
        assert not mccs.blocked.any()

    def test_single_fault_stays_alone(self):
        mccs = build_mccs(Mesh2D(6, 6), [(2, 2)], MCCType.TYPE_ONE)
        assert mccs.num_disabled == 0
        assert len(mccs) == 1

    def test_useless_chain_propagates_southwest(self):
        """A NE wall of faults makes the pocket node useless (type one)."""
        # Faults at (1,2) and (2,1) pocket (1,1): N=(1,2) faulty, E=(2,1) faulty.
        mccs = build_mccs(Mesh2D(6, 6), [(1, 2), (2, 1)], MCCType.TYPE_ONE)
        assert mccs.status_at((1, 1)) is NodeStatus.USELESS
        # And the propagation continues: (0,1)'s E=(1,1) useless, N=(0,2)? free.
        assert mccs.status_at((0, 1)) is NodeStatus.FAULT_FREE

    def test_cant_reach_chain_propagates_northeast(self):
        mccs = build_mccs(Mesh2D(6, 6), [(1, 2), (2, 1)], MCCType.TYPE_ONE)
        assert mccs.status_at((2, 2)) is NodeStatus.CANT_REACH

    def test_mesh_edges_count_as_healthy(self):
        """A corner node with a single faulty neighbour is not labelled."""
        mccs = build_mccs(Mesh2D(6, 6), [(0, 1)], MCCType.TYPE_ONE)
        assert mccs.status_at((0, 0)) is NodeStatus.FAULT_FREE
        mccs = build_mccs(Mesh2D(6, 6), [(1, 0)], MCCType.TYPE_ONE)
        assert mccs.status_at((0, 0)) is NodeStatus.FAULT_FREE

    def test_closure_matches_naive_fixpoint(self, rng):
        """The worklist closure equals a brute-force fixpoint computation."""
        mesh = Mesh2D(15, 15)
        for _ in range(10):
            faulty = np.zeros((15, 15), dtype=bool)
            count = int(rng.integers(1, 20))
            for _ in range(count):
                faulty[rng.integers(0, 15), rng.integers(0, 15)] = True
            for mcc_type in MCCType:
                status = label_statuses(mesh, faulty, mcc_type)
                blocked = status != NodeStatus.FAULT_FREE
                naive = _naive_blocked(mesh, faulty, mcc_type)
                assert np.array_equal(blocked, naive), f"{mcc_type} mismatch"

    def test_build_status_pairs(self):
        one, two = build_status_pairs(MESH10, FIGURE1_FAULTS)
        assert one.mcc_type is MCCType.TYPE_ONE
        assert two.mcc_type is MCCType.TYPE_TWO
        assert np.array_equal(one.faulty, two.faulty)

    def test_for_quadrant(self):
        assert MCCType.for_quadrant(Quadrant.I) is MCCType.TYPE_ONE
        assert MCCType.for_quadrant(Quadrant.III) is MCCType.TYPE_ONE
        assert MCCType.for_quadrant(Quadrant.II) is MCCType.TYPE_TWO
        assert MCCType.for_quadrant(Quadrant.IV) is MCCType.TYPE_TWO

    def test_component_lookup(self, rng):
        mesh = Mesh2D(20, 20)
        faults = [(2, 2), (3, 3), (10, 10)]
        mccs = build_mccs(mesh, faults, MCCType.TYPE_ONE)
        for component in mccs:
            for coord in component.coords:
                assert mccs.component_at(coord) is component
        assert mccs.component_at((0, 19)) is None


def _naive_blocked(mesh, faulty, mcc_type):
    """Brute-force Definition 2 fixpoint for cross-validation."""
    from repro.faults.mcc import _LABEL_RULES

    blocked_total = faulty.copy()
    for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
        (ax, ay), (bx, by) = _LABEL_RULES[(mcc_type, label)]
        blocked = faulty.copy()
        changed = True
        while changed:
            changed = False
            for x in range(mesh.n):
                for y in range(mesh.m):
                    if blocked[x, y]:
                        continue
                    a_ok = 0 <= x + ax < mesh.n and 0 <= y + ay < mesh.m and blocked[x + ax, y + ay]
                    b_ok = 0 <= x + bx < mesh.n and 0 <= y + by < mesh.m and blocked[x + bx, y + by]
                    if a_ok and b_ok:
                        blocked[x, y] = True
                        changed = True
        blocked_total |= blocked
    return blocked_total
