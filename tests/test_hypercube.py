"""Tests for the hypercube safety-level foundation (paper refs [16], [18])."""

import itertools

import numpy as np
import pytest

from repro.hypercube import (
    Hypercube,
    compute_hypercube_safety,
    hypercube_minimal_path_exists,
    safety_guided_route,
)
from repro.routing.router import RoutingError


class TestTopology:
    def test_basic(self):
        cube = Hypercube(3)
        assert cube.size == 8
        assert sorted(cube.neighbors(0b000)) == [0b001, 0b010, 0b100]
        assert cube.distance(0b000, 0b111) == 3
        assert cube.distance(0b101, 0b101) == 0

    def test_preferred_neighbors_flip_differing_bits(self):
        cube = Hypercube(4)
        preferred = cube.preferred_neighbors(0b0000, 0b1010)
        assert sorted(preferred) == [0b0010, 0b1000]

    def test_validation(self):
        with pytest.raises(ValueError):
            Hypercube(0)
        with pytest.raises(ValueError):
            Hypercube(3).require_in_bounds(8)


class TestSafetyLevels:
    def test_fault_free_cube_all_safe(self):
        cube = Hypercube(4)
        levels = compute_hypercube_safety(cube, [])
        assert all(level == 4 for level in levels)

    def test_faulty_nodes_level_zero(self):
        cube = Hypercube(3)
        levels = compute_hypercube_safety(cube, [0b111])
        assert levels[0b111] == 0
        # Distance-1 neighbours of a single fault keep full level in Q3:
        # every other destination remains minimally reachable.
        assert levels[0b011] == 3

    def test_two_faults_pinch_a_node(self):
        """Node 001 with faulty neighbours 011 and 101 drops to level 1:
        destination 111 at distance 2 has both minimal relays faulty."""
        cube = Hypercube(3)
        levels = compute_hypercube_safety(cube, [0b011, 0b101])
        assert levels[0b001] == 1
        assert not hypercube_minimal_path_exists(cube, [0b011, 0b101], 0b001, 0b111)

    def test_levels_monotone_in_faults(self):
        cube = Hypercube(4)
        rng = np.random.default_rng(5)
        faults = list(rng.choice(16, size=4, replace=False))
        fewer = compute_hypercube_safety(cube, faults[:2])
        more = compute_hypercube_safety(cube, faults)
        for node in cube.nodes():
            assert more[node] <= fewer[node]


class TestOracle:
    def test_matches_bruteforce_small(self):
        """DP existence equals brute-force enumeration of bit orders."""
        cube = Hypercube(3)
        rng = np.random.default_rng(11)
        for _ in range(40):
            fault_count = int(rng.integers(0, 4))
            faults = set(int(x) for x in rng.choice(8, size=fault_count, replace=False))
            for source in cube.nodes():
                for dest in cube.nodes():
                    expected = _bruteforce_exists(cube, faults, source, dest)
                    assert (
                        hypercube_minimal_path_exists(cube, faults, source, dest)
                        == expected
                    ), (faults, source, dest)

    def test_source_equals_dest(self):
        cube = Hypercube(3)
        assert hypercube_minimal_path_exists(cube, [], 5, 5)
        assert not hypercube_minimal_path_exists(cube, [5], 5, 5)


class TestWuTheorem:
    """The hypercube Theorem 1: S(u) >= H(u, d) guarantees minimal routing."""

    @pytest.mark.parametrize("dimensions", [3, 4, 5])
    def test_safety_level_soundness(self, dimensions):
        cube = Hypercube(dimensions)
        rng = np.random.default_rng(dimensions)
        for _ in range(20):
            fault_count = int(rng.integers(0, cube.size // 4))
            faults = set(
                int(x) for x in rng.choice(cube.size, size=fault_count, replace=False)
            )
            levels = compute_hypercube_safety(cube, faults)
            for source in cube.nodes():
                if source in faults:
                    continue
                for dest in cube.nodes():
                    if dest in faults or dest == source:
                        continue
                    if levels[source] >= cube.distance(source, dest):
                        assert hypercube_minimal_path_exists(
                            cube, faults, source, dest
                        ), (faults, source, dest, levels[source])

    def test_safety_guided_routing_delivers(self):
        cube = Hypercube(5)
        rng = np.random.default_rng(55)
        routed = 0
        for _ in range(10):
            faults = set(int(x) for x in rng.choice(32, size=5, replace=False))
            levels = compute_hypercube_safety(cube, faults)
            for _ in range(60):
                source = int(rng.integers(0, 32))
                dest = int(rng.integers(0, 32))
                if source in faults or dest in faults or source == dest:
                    continue
                distance = cube.distance(source, dest)
                if levels[source] < distance:
                    continue
                path = safety_guided_route(cube, levels, faults, source, dest)
                assert len(path) - 1 == distance
                assert not set(path) & faults
                routed += 1
        assert routed > 50

    def test_unsafe_source_rejected(self):
        cube = Hypercube(3)
        faults = [0b011, 0b101]
        levels = compute_hypercube_safety(cube, faults)
        with pytest.raises(RoutingError):
            safety_guided_route(cube, levels, faults, 0b001, 0b111)


def _bruteforce_exists(cube, faults, source, dest):
    if source in faults or dest in faults:
        return False
    difference = source ^ dest
    bits = [b for b in range(cube.dimensions) if difference >> b & 1]
    if not bits:
        return True
    for order in itertools.permutations(bits):
        node = source
        ok = True
        for bit in order:
            node ^= 1 << bit
            if node in faults:
                ok = False
                break
        if ok:
            return True
    return False
