"""Unit and soundness tests for the three extended sufficient conditions.

The headline property for each extension: whenever it declares a minimal (or
sub-minimal) path ensured, the exact oracle agrees one exists (of length D,
or D+2 for sub-minimal via the safe spare neighbour).
"""

import pytest

from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.pivots import recursive_center_pivots
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D


def _setup(mesh, faults):
    blocks = build_faulty_blocks(mesh, faults)
    return compute_safety_levels(mesh, blocks.unusable), blocks


class TestExtension1:
    def test_safe_source_short_circuits(self):
        mesh = Mesh2D(12, 12)
        levels, blocks = _setup(mesh, [(6, 6)])
        decision = extension1_decision(mesh, levels, blocks.unusable, (0, 0), (5, 5))
        assert decision.kind is DecisionKind.SOURCE_SAFE
        assert decision.via is None

    def test_preferred_neighbor_rescues(self):
        """Source unsafe, but its North neighbour sees a clear column."""
        mesh = Mesh2D(12, 12)
        # Block at (4, 0) caps the source's E at 3; from (0, 1) the East row
        # is clear, so the preferred neighbour (0, 1) is safe for (6, 6).
        levels, blocks = _setup(mesh, [(4, 0)])
        source, dest = (0, 0), (6, 6)
        assert not is_safe(levels, source, dest)
        decision = extension1_decision(mesh, levels, blocks.unusable, source, dest)
        assert decision.kind is DecisionKind.PREFERRED_NEIGHBOR_SAFE
        assert decision.via == (0, 1)
        assert decision.ensures_minimal

    def test_spare_neighbor_gives_sub_minimal(self):
        """Only a spare neighbour is safe: sub-minimal ensured."""
        mesh = Mesh2D(12, 12)
        # Blocks cap both axes at the source and its preferred neighbours,
        # but the West spare neighbour has clear sections.
        levels, blocks = _setup(mesh, [(3, 1), (4, 0), (1, 5), (2, 6)])
        source, dest = (1, 0), (8, 4)
        decision = extension1_decision(mesh, levels, blocks.unusable, source, dest)
        if decision.kind is DecisionKind.SPARE_NEIGHBOR_SAFE:
            assert decision.via in [(0, 0)]
            assert not decision.ensures_minimal
            assert decision.ensures_sub_minimal

    def test_sub_minimal_can_be_disallowed(self):
        mesh = Mesh2D(12, 12)
        levels, blocks = _setup(mesh, [(3, 1), (4, 0), (1, 5), (2, 6)])
        decision = extension1_decision(
            mesh, levels, blocks.unusable, (1, 0), (8, 4), allow_sub_minimal=False
        )
        assert decision.kind in (
            DecisionKind.UNSAFE,
            DecisionKind.SOURCE_SAFE,
            DecisionKind.PREFERRED_NEIGHBOR_SAFE,
        )

    def test_blocked_neighbors_skipped(self):
        mesh = Mesh2D(12, 12)
        # The East neighbour of the source is inside a block; it must not be
        # used as a helper even though its stale ESL might look safe.
        levels, blocks = _setup(mesh, [(1, 0)])
        decision = extension1_decision(mesh, levels, blocks.unusable, (0, 0), (8, 0))
        assert decision.via is None or not blocks.is_unusable(decision.via)

    @pytest.mark.parametrize("num_faults", [10, 40])
    def test_soundness_minimal(self, rng, num_faults):
        mesh = Mesh2D(30, 30)
        for _ in range(5):
            faults = uniform_faults(mesh, num_faults, rng)
            levels, blocks = _setup(mesh, faults)
            for _ in range(80):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                decision = extension1_decision(mesh, levels, blocks.unusable, source, dest)
                if decision.ensures_minimal:
                    assert minimal_path_exists(blocks.unusable, source, dest)
                elif decision.kind is DecisionKind.SPARE_NEIGHBOR_SAFE:
                    # Sub-minimal: minimal from the spare neighbour exists.
                    assert minimal_path_exists(blocks.unusable, decision.via, dest)


class TestExtension2:
    def test_covers_clear_x_axis_case(self):
        """Paper Figure 5 (a): x axis clear, y axis blocked."""
        mesh = Mesh2D(20, 20)
        # Block on the y axis near the source makes Definition 3 fail for
        # tall destinations; a node further East sees a clear column.
        levels, blocks = _setup(mesh, [(0, 3), (1, 4)])
        source, dest = (0, 0), (10, 12)
        assert not is_safe(levels, source, dest)
        decision = extension2_decision(mesh, levels, source, dest, segment_size=1)
        assert decision.kind is DecisionKind.AXIS_NODE_SAFE
        helper = decision.via
        assert helper[1] == 0 and 1 <= helper[0] <= dest[0]
        assert is_safe(levels, helper, dest)

    def test_respects_k_le_xd(self):
        """A helper East of the destination column is useless."""
        mesh = Mesh2D(20, 20)
        levels, blocks = _setup(mesh, [(0, 3), (1, 4), (3, 8)])
        source, dest = (0, 0), (2, 12)
        decision = extension2_decision(mesh, levels, source, dest, segment_size=1)
        if decision.kind is DecisionKind.AXIS_NODE_SAFE:
            assert decision.via[0] <= dest[0]

    def test_larger_segments_never_help_more(self, rng):
        """Coarser sampling is monotonically weaker (paper Figure 10)."""
        mesh = Mesh2D(30, 30)
        for _ in range(4):
            faults = uniform_faults(mesh, 40, rng)
            levels, blocks = _setup(mesh, faults)
            for _ in range(60):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                fine = extension2_decision(mesh, levels, source, dest, 1)
                if fine.kind is DecisionKind.UNSAFE:
                    # With the finest sampling unsafe, coarser must be too.
                    coarse = extension2_decision(mesh, levels, source, dest, None)
                    assert coarse.kind is DecisionKind.UNSAFE

    @pytest.mark.parametrize("segment_size", [1, 5, None])
    def test_soundness(self, rng, segment_size):
        mesh = Mesh2D(30, 30)
        for _ in range(4):
            faults = uniform_faults(mesh, 30, rng)
            levels, blocks = _setup(mesh, faults)
            for _ in range(60):
                source = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                dest = (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                decision = extension2_decision(mesh, levels, source, dest, segment_size)
                if decision.kind is not DecisionKind.UNSAFE:
                    assert minimal_path_exists(blocks.unusable, source, dest)

    def test_subsumes_definition3(self, rng):
        mesh = Mesh2D(25, 25)
        faults = uniform_faults(mesh, 25, rng)
        levels, blocks = _setup(mesh, faults)
        for _ in range(100):
            source = (int(rng.integers(0, 25)), int(rng.integers(0, 25)))
            dest = (int(rng.integers(0, 25)), int(rng.integers(0, 25)))
            if blocks.is_unusable(source) or blocks.is_unusable(dest):
                continue
            if is_safe(levels, source, dest):
                decision = extension2_decision(mesh, levels, source, dest, None)
                assert decision.kind is DecisionKind.SOURCE_SAFE


class TestExtension3:
    def test_pivot_chain(self):
        """Source safe w.r.t. a pivot and pivot safe w.r.t. the destination."""
        mesh = Mesh2D(20, 20)
        # Wall fragments block both axis approaches at longer range but
        # leave a dog-leg through the middle.
        levels, blocks = _setup(mesh, [(9, 0), (0, 9)])
        source, dest = (0, 0), (12, 12)
        assert not is_safe(levels, source, dest)
        pivots = [(5, 5)]
        decision = extension3_decision(mesh, levels, blocks.unusable, source, dest, pivots)
        assert decision.kind is DecisionKind.PIVOT_SAFE
        assert decision.via == (5, 5)

    def test_pivot_outside_rectangle_skipped(self):
        mesh = Mesh2D(20, 20)
        levels, blocks = _setup(mesh, [(9, 0), (0, 9)])
        source, dest = (0, 0), (12, 12)
        decision = extension3_decision(
            mesh, levels, blocks.unusable, source, dest, [(14, 14)]
        )
        assert decision.kind is DecisionKind.UNSAFE

    def test_blocked_pivot_skipped(self):
        mesh = Mesh2D(20, 20)
        levels, blocks = _setup(mesh, [(5, 5), (9, 0), (0, 9)])
        decision = extension3_decision(
            mesh, levels, blocks.unusable, (0, 0), (12, 12), [(5, 5)]
        )
        assert decision.kind is DecisionKind.UNSAFE

    def test_works_in_reflected_quadrants(self):
        mesh = Mesh2D(20, 20)
        # Mirror of test_pivot_chain into quadrant III.
        levels, blocks = _setup(mesh, [(10, 19), (19, 10)])
        source, dest = (19, 19), (7, 7)
        assert not is_safe(levels, source, dest)
        decision = extension3_decision(
            mesh, levels, blocks.unusable, source, dest, [(14, 14)]
        )
        assert decision.kind is DecisionKind.PIVOT_SAFE

    @pytest.mark.parametrize("levels_count", [1, 2, 3])
    def test_soundness(self, rng, levels_count):
        mesh = Mesh2D(30, 30)
        region = Rect(15, 29, 15, 29)
        pivots = recursive_center_pivots(region, levels_count)
        for _ in range(4):
            faults = uniform_faults(mesh, 35, rng)
            levels, blocks = _setup(mesh, faults)
            for _ in range(60):
                source = (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
                dest = (int(rng.integers(15, 30)), int(rng.integers(15, 30)))
                if blocks.is_unusable(source) or blocks.is_unusable(dest):
                    continue
                decision = extension3_decision(
                    mesh, levels, blocks.unusable, source, dest, pivots
                )
                if decision.kind is not DecisionKind.UNSAFE:
                    assert minimal_path_exists(blocks.unusable, source, dest)

    def test_more_pivots_never_hurt(self, rng):
        mesh = Mesh2D(30, 30)
        region = Rect(15, 29, 15, 29)
        few = recursive_center_pivots(region, 1)
        many = recursive_center_pivots(region, 3)
        faults = uniform_faults(mesh, 40, rng)
        levels, blocks = _setup(mesh, faults)
        for _ in range(80):
            source = (int(rng.integers(0, 15)), int(rng.integers(0, 15)))
            dest = (int(rng.integers(15, 30)), int(rng.integers(15, 30)))
            if blocks.is_unusable(source) or blocks.is_unusable(dest):
                continue
            with_few = extension3_decision(mesh, levels, blocks.unusable, source, dest, few)
            if with_few.kind is not DecisionKind.UNSAFE:
                with_many = extension3_decision(
                    mesh, levels, blocks.unusable, source, dest, many
                )
                assert with_many.kind is not DecisionKind.UNSAFE
