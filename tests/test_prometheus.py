"""Prometheus text exposition: format validity and stable metric names."""

import re

import pytest

from repro.obs import MetricsSink, Observatory, ThresholdRule, Tracer
from repro.obs.metrics import Histogram
from repro.obs.prof import Profiler
from repro.obs.prometheus import render_prometheus, render_timeseries
from tests import promtext

# One sample line of the 0.0.4 text format: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9.eE+-]+(\.[0-9]+)?$"
)
_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")


def _populated_sink() -> MetricsSink:
    sink = MetricsSink()
    tracer = Tracer(sink)
    tracer.emit("route_start", router="WuRouter", source=(0, 0), dest=(5, 5))
    tracer.emit("route_end", source=(0, 0), dest=(5, 5), hops=10, minimal=True,
                detours=0)
    tracer.emit("extension_fired", decision="case_1", at=(1, 1))
    for tick in range(4):
        tracer.emit("protocol_msg", msg="esl", time=tick, queue=tick + 1)
    tracer.emit("engine_run", now=4.0, pending=0, events_processed=9)
    with tracer.span("experiment"):
        pass
    return sink


def _parse(text: str) -> list[str]:
    """Validate every line against the exposition format; return samples."""
    assert text.endswith("\n")
    samples = []
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP"):
            assert _HELP.match(line), line
        elif line.startswith("# TYPE"):
            assert _TYPE.match(line), line
        else:
            assert _SAMPLE.match(line), line
            samples.append(line)
    return samples


class TestFormat:
    def test_every_line_valid(self):
        _parse(render_prometheus(_populated_sink().snapshot()))

    def test_every_sample_has_help_and_type(self):
        text = render_prometheus(_populated_sink().snapshot())
        declared = {m.group(1) for m in re.finditer(r"# TYPE (\S+)", text)}
        for sample in _parse(text):
            name = re.match(r"[a-zA-Z0-9_:]+", sample).group(0)
            base = re.sub(r"_(sum|count)$", "", name)
            assert name in declared or base in declared, sample

    def test_summary_carries_quantiles_sum_count(self):
        text = render_prometheus(_populated_sink().snapshot())
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'repro_route_hops{{quantile="{quantile}"}}' in text
        assert "repro_route_hops_sum 10" in text
        assert "repro_route_hops_count 1" in text

    def test_empty_summary_omits_quantiles_keeps_count(self):
        sink = MetricsSink()
        Tracer(sink).emit("route_failed", at=(0, 0), reason="stuck")
        text = render_prometheus(sink.snapshot())
        assert 'repro_route_hops{quantile' not in text
        assert "repro_route_hops_count 0" in text

    def test_empty_summary_with_stale_quantiles_and_null_total(self):
        """An external snapshot (e.g. a persisted JSON file) can carry
        count 0 alongside leftover numeric percentile keys and a null
        total; only _sum 0 / _count 0 may be exposed."""
        snapshot = {
            "routes": {
                "hops": {
                    "count": 0, "total": None,
                    "p50": 7.0, "p95": 9.0, "p99": 9.0,
                },
            },
        }
        text = render_prometheus(snapshot)
        assert "quantile" not in text
        assert "repro_route_hops_sum 0" in text
        assert "repro_route_hops_count 0" in text
        promtext.parse(text)

    def test_label_escaping(self):
        sink = MetricsSink()
        Tracer(sink).emit("protocol_msg", msg='odd"name\\x', time=0, queue=0)
        text = render_prometheus(sink.snapshot())
        assert 'msg="odd\\"name\\\\x"' in text

    def test_empty_snapshot_renders_nothing_but_stays_valid(self):
        text = render_prometheus(MetricsSink().snapshot())
        _parse(text)


class TestStableNames:
    """Metric names are API: dashboards depend on them."""

    def test_core_metric_names(self):
        text = render_prometheus(_populated_sink().snapshot())
        for name in (
            "repro_events_total",
            "repro_protocol_messages_total",
            "repro_decisions_total",
            "repro_routes_total",
            "repro_route_hops",
            "repro_route_detours",
            "repro_queue_depth",
            "repro_messages_per_tick",
            "repro_messages_per_tick_overflow_total",
            "repro_span_duration_seconds",
            "repro_engine_now",
            "repro_engine_pending",
            "repro_engine_events_processed_total",
        ):
            assert f"# TYPE {name} " in text, name

    def test_route_outcome_labels(self):
        text = render_prometheus(_populated_sink().snapshot())
        for outcome in ("delivered", "minimal", "sub_minimal", "failed"):
            assert f'repro_routes_total{{outcome="{outcome}"}}' in text

    def test_span_label(self):
        text = render_prometheus(_populated_sink().snapshot())
        assert 'repro_span_duration_seconds_count{span="experiment"} 1' in text

    def test_custom_prefix(self):
        text = render_prometheus(_populated_sink().snapshot(), prefix="mesh")
        assert "# TYPE mesh_events_total counter" in text
        assert "repro_" not in text


class TestPromtextRoundTrip:
    """Everything we render must survive the strict test parser."""

    def test_sink_render_parses(self):
        families = promtext.parse(render_prometheus(_populated_sink().snapshot()))
        assert "repro_events_total" in families
        assert families["repro_route_hops"].type == "summary"

    def test_label_escaping_round_trips(self):
        sink = MetricsSink()
        gnarly = 'odd"name\\x\nsecond line'
        Tracer(sink).emit("protocol_msg", msg=gnarly, time=0, queue=0)
        families = promtext.parse(render_prometheus(sink.snapshot()))
        labels = {
            sample.label_dict["msg"]
            for sample in families["repro_protocol_messages_total"].samples
        }
        assert gnarly in labels

    def test_timeseries_render_parses(self):
        observatory = Observatory(rules=(ThresholdRule("deep", "q", ">", 10.0),))
        for tick, value in enumerate([1.0, 20.0]):
            observatory.store.append(float(tick), {"q": value})
            observatory.alerts.evaluate(float(tick), observatory.store)
        families = promtext.parse(
            render_timeseries(observatory.store, observatory.alerts)
        )
        assert {"repro_live_sample", "repro_live_points", "repro_live_tick",
                "repro_alert_active", "repro_alerts_fired_total"} <= set(families)

    def test_type_headers_unique_in_combined_export(self):
        profiler = Profiler()
        profiler.count("router.steps", 1)
        text = render_prometheus(
            _populated_sink().snapshot(), profile=profiler.snapshot()
        )
        # parse() raises on duplicate # TYPE lines; double-check the raw text.
        promtext.parse(text)
        types = re.findall(r"# TYPE (\S+)", text)
        assert len(types) == len(set(types))

    def test_render_is_deterministic(self):
        snapshot = _populated_sink().snapshot()
        assert render_prometheus(snapshot) == render_prometheus(snapshot)


class TestProfileExport:
    def test_hot_counters_and_sections(self):
        profiler = Profiler()
        profiler.count("router.steps", 42)
        with profiler.section("stats.routing"):
            pass
        text = render_prometheus(
            _populated_sink().snapshot(), profile=profiler.snapshot()
        )
        _parse(text)
        assert 'repro_hot_counter_total{name="router.steps"} 42' in text
        assert "# TYPE repro_profile_section_seconds summary" in text
        assert 'repro_profile_section_seconds_count{section="stats.routing"} 1' in text

    def test_section_nanoseconds_scaled_to_seconds(self):
        profiler = Profiler()
        profiler.sections["fixed"] = h = Histogram()
        h.observe(2_000_000_000)  # 2s in ns
        text = render_prometheus({}, profile=profiler.snapshot())
        match = re.search(
            r'repro_profile_section_seconds_sum\{section="fixed"\} (\S+)', text
        )
        assert match and float(match.group(1)) == pytest.approx(2.0)

    def test_no_profile_no_profile_metrics(self):
        text = render_prometheus(_populated_sink().snapshot())
        assert "repro_hot_counter_total" not in text
        assert "repro_profile_section_seconds" not in text
