"""Prometheus text exposition: format validity and stable metric names."""

import re

import pytest

from repro.obs import MetricsSink, Tracer
from repro.obs.metrics import Histogram
from repro.obs.prof import Profiler
from repro.obs.prometheus import render_prometheus

# One sample line of the 0.0.4 text format: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9.eE+-]+(\.[0-9]+)?$"
)
_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")


def _populated_sink() -> MetricsSink:
    sink = MetricsSink()
    tracer = Tracer(sink)
    tracer.emit("route_start", router="WuRouter", source=(0, 0), dest=(5, 5))
    tracer.emit("route_end", source=(0, 0), dest=(5, 5), hops=10, minimal=True,
                detours=0)
    tracer.emit("extension_fired", decision="case_1", at=(1, 1))
    for tick in range(4):
        tracer.emit("protocol_msg", msg="esl", time=tick, queue=tick + 1)
    tracer.emit("engine_run", now=4.0, pending=0, events_processed=9)
    with tracer.span("experiment"):
        pass
    return sink


def _parse(text: str) -> list[str]:
    """Validate every line against the exposition format; return samples."""
    assert text.endswith("\n")
    samples = []
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP"):
            assert _HELP.match(line), line
        elif line.startswith("# TYPE"):
            assert _TYPE.match(line), line
        else:
            assert _SAMPLE.match(line), line
            samples.append(line)
    return samples


class TestFormat:
    def test_every_line_valid(self):
        _parse(render_prometheus(_populated_sink().snapshot()))

    def test_every_sample_has_help_and_type(self):
        text = render_prometheus(_populated_sink().snapshot())
        declared = {m.group(1) for m in re.finditer(r"# TYPE (\S+)", text)}
        for sample in _parse(text):
            name = re.match(r"[a-zA-Z0-9_:]+", sample).group(0)
            base = re.sub(r"_(sum|count)$", "", name)
            assert name in declared or base in declared, sample

    def test_summary_carries_quantiles_sum_count(self):
        text = render_prometheus(_populated_sink().snapshot())
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'repro_route_hops{{quantile="{quantile}"}}' in text
        assert "repro_route_hops_sum 10" in text
        assert "repro_route_hops_count 1" in text

    def test_empty_summary_omits_quantiles_keeps_count(self):
        sink = MetricsSink()
        Tracer(sink).emit("route_failed", at=(0, 0), reason="stuck")
        text = render_prometheus(sink.snapshot())
        assert 'repro_route_hops{quantile' not in text
        assert "repro_route_hops_count 0" in text

    def test_label_escaping(self):
        sink = MetricsSink()
        Tracer(sink).emit("protocol_msg", msg='odd"name\\x', time=0, queue=0)
        text = render_prometheus(sink.snapshot())
        assert 'msg="odd\\"name\\\\x"' in text

    def test_empty_snapshot_renders_nothing_but_stays_valid(self):
        text = render_prometheus(MetricsSink().snapshot())
        _parse(text)


class TestStableNames:
    """Metric names are API: dashboards depend on them."""

    def test_core_metric_names(self):
        text = render_prometheus(_populated_sink().snapshot())
        for name in (
            "repro_events_total",
            "repro_protocol_messages_total",
            "repro_decisions_total",
            "repro_routes_total",
            "repro_route_hops",
            "repro_route_detours",
            "repro_queue_depth",
            "repro_messages_per_tick",
            "repro_messages_per_tick_overflow_total",
            "repro_span_duration_seconds",
            "repro_engine_now",
            "repro_engine_pending",
            "repro_engine_events_processed_total",
        ):
            assert f"# TYPE {name} " in text, name

    def test_route_outcome_labels(self):
        text = render_prometheus(_populated_sink().snapshot())
        for outcome in ("delivered", "minimal", "sub_minimal", "failed"):
            assert f'repro_routes_total{{outcome="{outcome}"}}' in text

    def test_span_label(self):
        text = render_prometheus(_populated_sink().snapshot())
        assert 'repro_span_duration_seconds_count{span="experiment"} 1' in text

    def test_custom_prefix(self):
        text = render_prometheus(_populated_sink().snapshot(), prefix="mesh")
        assert "# TYPE mesh_events_total counter" in text
        assert "repro_" not in text


class TestProfileExport:
    def test_hot_counters_and_sections(self):
        profiler = Profiler()
        profiler.count("router.steps", 42)
        with profiler.section("stats.routing"):
            pass
        text = render_prometheus(
            _populated_sink().snapshot(), profile=profiler.snapshot()
        )
        _parse(text)
        assert 'repro_hot_counter_total{name="router.steps"} 42' in text
        assert "# TYPE repro_profile_section_seconds summary" in text
        assert 'repro_profile_section_seconds_count{section="stats.routing"} 1' in text

    def test_section_nanoseconds_scaled_to_seconds(self):
        profiler = Profiler()
        profiler.sections["fixed"] = h = Histogram()
        h.observe(2_000_000_000)  # 2s in ns
        text = render_prometheus({}, profile=profiler.snapshot())
        match = re.search(
            r'repro_profile_section_seconds_sum\{section="fixed"\} (\S+)', text
        )
        assert match and float(match.group(1)) == pytest.approx(2.0)

    def test_no_profile_no_profile_metrics(self):
        text = render_prometheus(_populated_sink().snapshot())
        assert "repro_hot_counter_total" not in text
        assert "repro_profile_section_seconds" not in text
