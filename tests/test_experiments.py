"""Unit and smoke tests for the experiment harness (Figures 7-12)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    fig7_affected_rows,
    fig8_disabled_nodes,
    fig9_extension1,
    fig10_extension2,
    fig11_extension3,
    fig12_strategies,
)
from repro.experiments.runner import BLOCK_MODEL, ConditionExperiment, MetricSpec
from repro.mesh.geometry import Rect

TINY = ExperimentConfig.scaled(side=32, patterns_per_count=2, destinations_per_pattern=5)


class TestConfig:
    def test_paper_scale(self):
        config = ExperimentConfig.paper()
        assert config.mesh_side == 200
        assert config.source == (100, 100)
        assert max(config.fault_counts) == 200
        assert config.destination_region == Rect(100, 199, 100, 199)

    def test_scaled_preserves_density(self):
        config = ExperimentConfig.scaled(side=100, patterns_per_count=2, destinations_per_pattern=2)
        # 200 faults at 200^2 nodes -> 50 at 100^2.
        assert max(config.fault_counts) == 50

    def test_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert ExperimentConfig.from_environment().mesh_side == 60
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentConfig.from_environment().mesh_side == 200

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mesh_side=4)
        with pytest.raises(ValueError):
            ExperimentConfig(mesh_side=20, fault_counts=(200,))
        with pytest.raises(ValueError):
            ExperimentConfig(fault_counts=())

    def test_describe_mentions_scale(self):
        assert "200x200" in ExperimentConfig.paper().describe()


class TestRunner:
    def test_duplicate_metric_names_rejected(self):
        metric = MetricSpec("m", lambda ctx, d: True)
        with pytest.raises(ValueError):
            ConditionExperiment(TINY, [metric, MetricSpec("m", lambda ctx, d: False)])

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            ConditionExperiment(TINY, [])

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec("m", lambda ctx, d: True, model="torus")

    def test_constant_metrics(self):
        always = MetricSpec("always", lambda ctx, d: True)
        never = MetricSpec("never", lambda ctx, d: False, model=BLOCK_MODEL)
        series = ConditionExperiment(TINY, [always, never]).run("figX", "constant")
        assert all(v == 1.0 for v in series.column("always"))
        assert all(v == 0.0 for v in series.column("never"))
        assert len(series.xs) == len(TINY.fault_counts)

    def test_deterministic_given_seed(self):
        metric = MetricSpec("safe", lambda ctx, d: bool(ctx.blocked.sum() % 2))
        a = ConditionExperiment(TINY, [metric]).run("figX", "t")
        b = ConditionExperiment(TINY, [metric]).run("figX", "t")
        assert a.column("safe") == b.column("safe")

    def test_progress_callback(self):
        seen = []
        metric = MetricSpec("m", lambda ctx, d: True)
        ConditionExperiment(TINY, [metric]).run("figX", "t", progress=seen.append)
        assert len(seen) == len(TINY.fault_counts)

    def test_destinations_in_region_and_free(self):
        observed = []

        def recorder(ctx, dest):
            observed.append((ctx, dest))
            return True

        ConditionExperiment(TINY, [MetricSpec("rec", recorder)]).run("figX", "t")
        region = TINY.destination_region
        for ctx, dest in observed:
            assert region.contains(dest)
            assert not ctx.blocked[dest]
            assert dest != ctx.source


class TestFigureSmoke:
    """Each figure runs at tiny scale and yields well-formed series."""

    def test_fig7(self):
        series = fig7_affected_rows(TINY)
        assert set(series.series) == {"analytical", "experimental"}
        assert len(series.xs) == len(TINY.fault_counts)

    def test_fig8(self):
        series = fig8_disabled_nodes(TINY)
        assert set(series.series) == {"wu_model", "mcc"}
        for w, m in zip(series.column("wu_model"), series.column("mcc")):
            assert m <= w + 1e-9

    def test_fig9(self):
        series = fig9_extension1(TINY)
        assert {"safe_source", "ext1_min", "existence", "safe_sourcea"} <= set(series.series)
        for s, e in zip(series.column("safe_source"), series.column("ext1_min")):
            assert e >= s

    def test_fig10(self):
        series = fig10_extension2(TINY)
        assert {"ext2_1", "ext2_5", "ext2_10", "ext2_max"} <= set(series.series)
        for fine, coarse in zip(series.column("ext2_1"), series.column("ext2_max")):
            assert fine >= coarse

    def test_fig11(self):
        series = fig11_extension3(TINY)
        for l2, l3 in zip(series.column("ext3_level2"), series.column("ext3_level3")):
            assert l3 >= l2

    def test_fig12(self):
        series = fig12_strategies(TINY)
        assert {"strategy1", "strategy4", "strategy4a"} <= set(series.series)
        for s1, s4 in zip(series.column("strategy1"), series.column("strategy4")):
            assert s4 >= s1 - 1e-9
