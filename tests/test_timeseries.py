"""Ring-buffer TSDB, the engine tick hook, and series replay determinism."""

import threading

import numpy as np
import pytest

from repro.chaos import ChannelFaultPlan, ChaosSchedule
from repro.chaos.runner import ChaosRunner
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.obs import (
    SAMPLER_SERIES,
    Observatory,
    SampleStore,
    TimeSeries,
    use_observatory,
)
from repro.obs.replay import build_runner
from repro.simulator.engine import Engine


class TestTimeSeries:
    def test_plain_append(self):
        ts = TimeSeries("x", capacity=8)
        for tick in range(5):
            ts.append(float(tick), float(tick * 10))
        assert ts.ticks == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert ts.last == 40.0
        assert ts.last_tick == 4.0

    def test_equal_tick_replaces_last_value(self):
        ts = TimeSeries("x", capacity=8)
        ts.append(1.0, 5.0)
        ts.append(1.0, 7.0)
        assert ts.ticks == [1.0]
        assert ts.values == [7.0]

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=4)

    def test_decimation_bounds_memory_and_doubles_stride(self):
        ts = TimeSeries("x", capacity=16)
        for tick in range(10_000):
            ts.append(float(tick), float(tick))
        assert 8 <= len(ts) <= 16
        assert ts.stride >= 512
        # Retained ticks are exactly the multiples of the final stride.
        assert all(tick % ts.stride == 0 for tick in ts.ticks)

    def test_decimation_keeps_first_and_covers_run(self):
        ts = TimeSeries("x", capacity=16)
        for tick in range(1000):
            ts.append(float(tick), float(tick))
        assert ts.ticks[0] == 0.0
        assert ts.ticks[-1] >= 1000 - ts.stride

    def test_decimation_is_pure_function_of_append_sequence(self):
        a, b = TimeSeries("a", capacity=16), TimeSeries("b", capacity=16)
        for tick in range(997):
            a.append(float(tick), float(tick % 7))
            b.append(float(tick), float(tick % 7))
        assert a.ticks == b.ticks
        assert a.values == b.values
        assert a.stride == b.stride

    def test_at_or_before(self):
        ts = TimeSeries("x", capacity=8)
        for tick in (1.0, 3.0, 5.0):
            ts.append(tick, tick * 2)
        assert ts.at_or_before(4.0) == (3.0, 6.0)
        assert ts.at_or_before(0.5) is None
        assert ts.at_or_before(5.0) == (5.0, 10.0)

    def test_bounds_and_to_dict(self):
        ts = TimeSeries("x", capacity=8)
        assert ts.bounds() == (0.0, 0.0)
        ts.append(0.0, 3.0)
        ts.append(1.0, -1.0)
        assert ts.bounds() == (-1.0, 3.0)
        assert ts.to_dict() == {"ticks": [0.0, 1.0], "values": [3.0, -1.0], "stride": 1}


class TestSampleStore:
    def test_append_and_snapshot(self):
        store = SampleStore(capacity=16)
        store.append(0.0, {"a": 1.0, "b": 2.0})
        store.append(1.0, {"a": 3.0, "b": 4.0})
        snap = store.snapshot()
        assert snap["series"]["a"]["values"] == [1.0, 3.0]
        assert store.last_tick() == 1.0
        assert store.last_row() == {"a": 3.0, "b": 4.0}
        assert len(store) == 2
        assert list(store) == ["a", "b"]

    def test_concurrent_snapshot_while_appending(self):
        store = SampleStore(capacity=64)
        stop = threading.Event()
        errors: list[BaseException] = []

        def scrape():
            try:
                while not stop.is_set():
                    snap = store.snapshot()
                    for body in snap["series"].values():
                        assert len(body["ticks"]) == len(body["values"])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=scrape)
        thread.start()
        for tick in range(2000):
            store.append(float(tick), {"a": float(tick), "b": float(-tick)})
        stop.set()
        thread.join()
        assert not errors


class TestEngineTickHook:
    def test_boundaries_fire_before_crossing_event(self):
        engine = Engine()
        seen: list[tuple[str, float]] = []
        engine.set_tick_hook(lambda tick: seen.append(("tick", tick)), interval=1.0)
        for t in (0.5, 1.5, 2.5):
            engine.schedule(t, lambda t=t: seen.append(("event", t)))
        engine.run()
        # Boundary k fires before the first event at-or-past it; a
        # terminal sample lands at the final clock value.
        assert seen == [
            ("tick", 0.0), ("event", 0.5),
            ("tick", 1.0), ("event", 1.5),
            ("tick", 2.0), ("event", 2.5),
            ("tick", 2.5),
        ]

    def test_until_jump_fires_trailing_boundaries(self):
        engine = Engine()
        ticks: list[float] = []
        engine.set_tick_hook(ticks.append, interval=1.0)
        engine.schedule(0.5, lambda: None)
        engine.run(until=3.0)
        # The clock jumped to 3.0; idle boundaries still fire in order.
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_interval_spacing(self):
        engine = Engine()
        ticks: list[float] = []
        engine.set_tick_hook(ticks.append, interval=4.0)
        for t in range(10):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert ticks == [0.0, 4.0, 8.0, 9.0]

    def test_hook_survives_multiple_runs_without_rewinding(self):
        engine = Engine()
        ticks: list[float] = []
        engine.set_tick_hook(ticks.append, interval=1.0)
        engine.schedule(0.5, lambda: None)
        engine.run()
        engine.schedule(1.0, lambda: None)  # 1.5 absolute
        engine.run()
        assert ticks == sorted(ticks)
        assert len(ticks) == len(set(ticks)) + 0  # strictly increasing

    def test_no_hook_no_change(self):
        engine = Engine()
        fired: list[float] = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.0]

    def test_invalid_interval_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.set_tick_hook(lambda tick: None, interval=0.0)

    def test_max_events_budget_still_enforced(self):
        engine = Engine()
        engine.set_tick_hook(lambda tick: None, interval=1.0)
        for t in range(10):
            engine.schedule(float(t), lambda: None)
        with pytest.raises(RuntimeError):
            engine.run(max_events=3)


def _chaos_scenario(side=10, n_faults=4, seed=3):
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, n_faults, rng)
    plan = ChannelFaultPlan(drop=0.08, duplicate=0.02, seed=seed)
    schedule = ChaosSchedule.random(mesh, rng, events=4, forbidden=set(faults))
    return mesh, faults, plan, schedule


class TestObservatorySampling:
    def test_sampler_emits_every_series(self):
        mesh, faults, plan, schedule = _chaos_scenario()
        observatory = Observatory(rules=())
        runner = ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            observatory=observatory,
        )
        runner.run()
        names = observatory.store.names()
        for name in SAMPLER_SERIES:
            assert name in names
        carried = observatory.store.get("net.carried")
        assert carried.last > 0
        # Counters sampled per tick are monotone.
        assert carried.values == sorted(carried.values)

    def test_series_match_final_network_stats(self):
        mesh, faults, plan, schedule = _chaos_scenario()
        observatory = Observatory(rules=())
        runner = ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            observatory=observatory,
        )
        outcome = runner.run()
        store = observatory.store
        assert store.get("net.carried").last == outcome.stats.messages
        assert store.get("net.dropped").last == outcome.stats.dropped
        assert store.get("net.faulty").last == len(outcome.final_faults)
        assert store.get("engine.tick").last == runner.engine.now

    def test_ambient_observatory_slot(self):
        mesh, faults, plan, schedule = _chaos_scenario()
        observatory = Observatory(rules=())
        runner = ChaosRunner(mesh, faults=faults, plan=plan, schedule=schedule)
        with use_observatory(observatory):
            runner.run()
        assert len(observatory.store) >= len(SAMPLER_SERIES)

    def test_on_sample_callback(self):
        mesh, faults, plan, schedule = _chaos_scenario()
        seen: list[float] = []
        observatory = Observatory(rules=(), on_sample=seen.append)
        ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            observatory=observatory,
        ).run()
        assert seen and seen == sorted(seen)

    def test_rebuilt_run_replays_to_bit_identical_series(self):
        """The tentpole determinism property: same recipe, same series."""
        mesh, faults, plan, schedule = _chaos_scenario()
        first = Observatory(rules=())
        runner = ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            observatory=first,
        )
        recipe = runner.recipe()
        runner.run()

        second = Observatory(rules=())
        rebuilt = build_runner(recipe)
        rebuilt.network.observatory = second
        rebuilt.run()
        assert first.store.snapshot() == second.store.snapshot()

    def test_observatory_does_not_perturb_flight_recording(self):
        from repro.obs import FlightRecorder
        from repro.obs.recorder import canonical

        mesh, faults, plan, schedule = _chaos_scenario()
        plain_recorder = FlightRecorder()
        ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            recorder=plain_recorder,
        ).run()

        observed_recorder = FlightRecorder()
        ChaosRunner(
            mesh, faults=faults, plan=plan, schedule=schedule,
            recorder=observed_recorder, observatory=Observatory(),
        ).run()
        plain = [canonical(event.to_dict()) for event in plain_recorder.events]
        observed = [canonical(event.to_dict()) for event in observed_recorder.events]
        assert plain == observed
