"""The whole system on one scenario, distributed end to end.

Fault detection -> distributed block formation -> distributed ESL formation
-> distributed boundary distribution -> safe-condition decisions from the
formed state -> Wu's protocol routing off the *distributed* annotations ->
packets delivered as simulator messages.  No centralized computation feeds
the data path; the centralized modules only appear as cross-checks.
"""

import numpy as np
import pytest

from repro.core.boundaries import BoundaryMap, CanonicalBoundaryMap
from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import BlockSet, build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.mesh.geometry import Rect
from repro.mesh.topology import Mesh2D
from repro.routing.packet import PacketStatus
from repro.simulator.protocols import (
    run_block_formation,
    run_boundary_distribution,
    run_safety_propagation,
)
from repro.simulator.protocols.packet_routing import run_distributed_routing


@pytest.fixture(scope="module")
def pipeline():
    """One medium scenario taken through every distributed stage."""
    mesh = Mesh2D(28, 28)
    rng = np.random.default_rng(20021)
    faults = uniform_faults(mesh, 45, rng, forbidden={mesh.center})
    while build_faulty_blocks(mesh, faults).is_unusable(mesh.center):
        faults = uniform_faults(mesh, 45, rng, forbidden={mesh.center})

    formation = run_block_formation(mesh, faults)
    # Block extents from the converged labelling (the one centralized step a
    # real system would do via a cheap perimeter wave).
    blocks = build_faulty_blocks(mesh, faults)
    assert np.array_equal(formation.unusable, blocks.unusable)

    esl = run_safety_propagation(mesh, formation.unusable)
    boundary = run_boundary_distribution(mesh, blocks.rects(), formation.unusable)
    return mesh, faults, blocks, formation, esl, boundary, rng


class TestPipelineStages:
    def test_formed_levels_match_centralized(self, pipeline):
        mesh, _, blocks, formation, esl, _, _ = pipeline
        expected = compute_safety_levels(mesh, formation.unusable)
        for node in mesh.nodes():
            if formation.unusable[node]:
                continue
            assert esl.levels.esl(node) == expected.esl(node)

    def test_formed_boundaries_match_centralized(self, pipeline):
        mesh, _, blocks, formation, _, boundary, _ = pipeline
        expected = CanonicalBoundaryMap.build(mesh, blocks.rects(), formation.unusable)
        got = {
            coord: {(t.block_index, t.line): t.toward for t in tags}
            for coord, tags in boundary.annotations.items()
        }
        want = {
            coord: {(t.block_index, t.line): t.toward for t in tags}
            for coord, tags in expected.annotations.items()
        }
        assert got == want


class TestRoutingOffDistributedState:
    def test_safe_traffic_delivered_minimally(self, pipeline):
        mesh, _, blocks, formation, esl, boundary, rng = pipeline

        # Router wired to the DISTRIBUTED annotations for quadrant I.
        bmap = BoundaryMap.for_blocks(blocks)
        bmap.install(
            False,
            False,
            CanonicalBoundaryMap.from_annotations(mesh, blocks.rects(), boundary.annotations),
        )
        router = WuRouter(mesh, blocks, boundary_map=bmap)

        source = mesh.center
        region = Rect(source[0], mesh.n - 1, source[1], mesh.m - 1)
        traffic = []
        attempts = 0
        while len(traffic) < 30 and attempts < 3000:
            attempts += 1
            dest = (
                int(rng.integers(region.xmin, region.xmax + 1)),
                int(rng.integers(region.ymin, region.ymax + 1)),
            )
            if dest == source or formation.unusable[dest]:
                continue
            # Decisions from the DISTRIBUTED safety levels.
            if is_safe(esl.levels, source, dest):
                traffic.append((source, dest))
        assert traffic

        unusable_set = {
            (int(x), int(y)) for x, y in zip(*np.nonzero(formation.unusable))
        }
        run = run_distributed_routing(mesh, router, unusable_set, traffic)
        assert run.delivered == len(traffic)
        for packet in run.packets:
            assert packet.status is PacketStatus.DELIVERED
            assert packet.hops == mesh.distance(packet.source, packet.dest)
            # And the decision was sound per the oracle.
            assert minimal_path_exists(formation.unusable, packet.source, packet.dest)
