"""Unit tests for figure reporting and text-mode visualization."""

import numpy as np
import pytest

from repro.analysis.statistics import Estimate
from repro.experiments.report import FigureSeries
from repro.faults.blocks import build_faulty_blocks
from repro.mesh.topology import Mesh2D
from repro.routing.path import Path
from repro.viz.ascii_art import render_mesh
from repro.viz.plots import line_plot


def _series():
    series = FigureSeries(figure_id="figX", title="test", x_label="faults")
    series.xs = [10.0, 20.0]
    series.series = {
        "a": [Estimate(0.9, 0.01, 100), Estimate(0.8, 0.02, 100)],
        "b": [Estimate(0.95, 0.01, 100), Estimate(0.85, 0.02, 100)],
    }
    return series


class TestFigureSeries:
    def test_table_contains_all_cells(self):
        table = _series().to_table(precision=2)
        assert "figX" in table and "faults" in table
        for cell in ("0.90", "0.80", "0.95", "0.85"):
            assert cell in table

    def test_table_with_ci(self):
        assert "±" in _series().to_table(with_ci=True)

    def test_csv_round_trip(self):
        csv = _series().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "faults,a,a_ci95,b,b_ci95"
        assert len(lines) == 3
        first = lines[1].split(",")
        assert float(first[0]) == 10.0
        assert float(first[1]) == pytest.approx(0.9)

    def test_column(self):
        assert _series().column("a") == [0.9, 0.8]

    def test_validate_catches_ragged_series(self):
        series = _series()
        series.series["a"].pop()
        with pytest.raises(ValueError):
            series.validate()

    def test_ascii_plot_renders(self):
        plot = _series().to_ascii_plot(width=40, height=10)
        assert "o=a" in plot and "x=b" in plot
        assert "figX" in plot

    def test_render_combines(self):
        rendered = _series().render()
        assert "==" in rendered and "o=a" in rendered


class TestLinePlot:
    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_flat_series(self):
        plot = line_plot({"flat": [(0, 1.0), (10, 1.0)]}, width=30, height=6)
        assert "o=flat" in plot

    def test_axis_labels(self):
        plot = line_plot({"a": [(0, 0.0), (100, 1.0)]}, x_label="faults")
        assert "(faults)" in plot
        assert "100" in plot

    def test_distinct_glyphs(self):
        plot = line_plot(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]}, width=20, height=8
        )
        assert "o=one" in plot and "x=two" in plot


class TestRenderMesh:
    def test_marks_and_layers(self):
        mesh = Mesh2D(5, 5)
        blocks = build_faulty_blocks(mesh, [(1, 1), (2, 2)])
        art = render_mesh(
            mesh,
            faulty=blocks.faulty,
            blocked=blocks.unusable,
            path=[(0, 0), (0, 1)],
            source=(0, 0),
            dest=(4, 4),
            marks={(4, 0): "P"},
        )
        assert "#" in art and "x" in art
        assert "S" in art and "D" in art and "P" in art
        # North is up: the top line is row y=4 containing the destination.
        assert "D" in art.splitlines()[0]

    def test_axes_toggle(self):
        mesh = Mesh2D(3, 3)
        with_axes = render_mesh(mesh)
        without = render_mesh(mesh, axes=False)
        assert len(with_axes.splitlines()) == 4
        assert len(without.splitlines()) == 3

    def test_path_overlay(self):
        mesh = Mesh2D(4, 4)
        path = Path.of([(0, 0), (1, 0), (2, 0), (2, 1)])
        art = render_mesh(mesh, path=path.nodes, axes=False)
        assert art.count("*") == 4


class TestRenderBoundaries:
    def test_overlay_marks_lines(self):
        from repro.core.boundaries import BoundaryMap
        from repro.viz.ascii_art import render_boundaries

        mesh = Mesh2D(12, 12)
        blocks = build_faulty_blocks(mesh, [(5, 5), (6, 6)])
        canonical = BoundaryMap.for_blocks(blocks).canonical(False, False)
        art = render_boundaries(mesh, blocks, canonical)
        assert "-" in art  # L1 row
        assert "|" in art  # L3 column
        assert "+" in art  # shared corner
        assert "#" in art and "x" in art
