"""Legacy shim: lets ``pip install -e .`` work without the wheel package.

All metadata lives in pyproject.toml; see the note there.
"""

from setuptools import setup

setup()
